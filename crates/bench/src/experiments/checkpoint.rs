//! Checkpoint journal records for crash-safe experiment grids.
//!
//! The grid runner ([`runner`](super::runner)) journals every *completed*
//! cell to a `*.checkpoint.jsonl` sidecar so an interrupted run can be
//! resumed without recomputing finished work. This module owns the
//! record format and its replay semantics; the durability contract
//! (line-atomic append, fsync-per-record, tolerant tail handling) lives
//! in [`anonet_trace::journal`].
//!
//! # Record format (version 1)
//!
//! One JSON object per line:
//!
//! ```text
//! {"v":1,"index":3,"id":"thm1","micros":1234,"payload":<json>}
//! ```
//!
//! * `v` — format version (this module writes and accepts only `1`);
//! * `index` — the cell's position in the grid, `0`-based;
//! * `id` — the cell's stable identifier (must match the grid on
//!   resume — a mismatch means the journal belongs to a *different*
//!   grid and is a hard error, never a silent recompute);
//! * `micros` — the cell's measured wall-clock time, replayed verbatim
//!   on resume so a resumed document reports the original measurement;
//! * `payload` — the cell's result: a serialized
//!   [`Table`](anonet_core::experiment::Table) for experiment grids, a
//!   serialized scaling cell for the `exp_*_scaling` benchmark grids.
//!
//! Payloads are written with the vendored `serde_json` writer and read
//! back with [`anonet_trace::json`]; the two agree on escaping, and
//! neither side emits floats, which keeps `parse ∘ render` the
//! identity and the resumed output byte-identical to a fresh run.
//!
//! Duplicate indices can occur when a journal is appended to across
//! several partial runs; replay is last-wins, matching the append
//! order. A torn trailing fragment (kill mid-write) is dropped with a
//! warning; a *complete* line that does not decode is a hard error,
//! because [`JournalWriter`] only ever appends whole valid records.

use anonet_core::experiment::Table;
use anonet_trace::journal::{read_journal, JournalWriter};
use anonet_trace::json::{escape_into, JsonValue};
use std::path::{Path, PathBuf};

/// The journal record format version this module writes and accepts.
pub const FORMAT_VERSION: i128 = 1;

/// A typed checkpoint/journal failure.
///
/// Every file-reachable error of the checkpoint machinery surfaces as
/// one of these variants — opening, reading, or replaying a journal can
/// fail because of the *disk* ([`JournalError::Io`]), the *file
/// contents* ([`JournalError::BadRecord`], [`JournalError::BadPayload`],
/// [`JournalError::TruncatedTail`]), or the *operator*
/// ([`JournalError::ForeignJournal`], [`JournalError::Config`]). None of
/// them panic: a corrupt or foreign journal is an input problem, not a
/// bug.
#[derive(Debug)]
pub enum JournalError {
    /// The journal file could not be opened or read.
    Io {
        /// The journal path.
        path: PathBuf,
        /// The underlying filesystem error.
        source: std::io::Error,
    },
    /// A complete journal line failed to decode (see [`decode_record`]).
    BadRecord {
        /// The journal path.
        path: PathBuf,
        /// The offending line, `1`-based.
        line: usize,
        /// The first violated format rule.
        detail: String,
    },
    /// A journaled payload did not rebuild into a cell result.
    BadPayload {
        /// The journal path.
        path: PathBuf,
        /// The cell whose payload failed, `0`-based grid index.
        cell: usize,
        /// The first violated payload rule.
        detail: String,
    },
    /// A record's `index`/`id` does not match this grid — the journal
    /// was written by a *different* grid, and silently recomputing
    /// would mask the operator error.
    ForeignJournal {
        /// The journal path.
        path: PathBuf,
        /// The offending line, `1`-based.
        line: usize,
        /// Which coordinate mismatched, and how.
        detail: String,
    },
    /// The journal ends mid-record (reported by [`lint_journal`];
    /// resume tolerates a torn tail by dropping it).
    TruncatedTail {
        /// The journal path.
        path: PathBuf,
        /// Length of the torn fragment, in bytes.
        bytes: usize,
    },
    /// The runner flags are inconsistent (e.g. `--resume` without
    /// `--checkpoint`).
    Config {
        /// What is inconsistent.
        detail: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { path, source } => {
                write!(f, "cannot read {}: {source}", path.display())
            }
            JournalError::BadRecord { path, line, detail } => {
                write!(f, "{} line {line}: {detail}", path.display())
            }
            JournalError::BadPayload { path, cell, detail } => {
                write!(f, "{} cell {cell}: {detail}", path.display())
            }
            JournalError::ForeignJournal { path, line, detail } => {
                write!(
                    f,
                    "{} line {line}: {detail} (journal belongs to a different grid?)",
                    path.display()
                )
            }
            JournalError::TruncatedTail { path, bytes } => {
                write!(
                    f,
                    "{}: truncated trailing line ({bytes} bytes without a newline)",
                    path.display()
                )
            }
            JournalError::Config { detail } => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl JournalError {
    /// The `--resume`-without-`--checkpoint` configuration error (the
    /// one config rule both checkpointed runners enforce).
    pub(crate) fn resume_requires_checkpoint() -> JournalError {
        JournalError::Config {
            detail: "--resume requires --checkpoint PATH".to_string(),
        }
    }
}

/// One decoded journal record (see the [module docs](self) for the
/// line format).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointRecord {
    /// The cell's `0`-based position in the grid.
    pub index: usize,
    /// The cell's stable identifier.
    pub id: String,
    /// The journaled wall-clock measurement, in microseconds.
    pub micros: u64,
    /// The cell's result, as an opaque JSON value.
    pub payload: JsonValue,
}

/// Encodes one record as a single journal line (no trailing newline).
///
/// `payload_json` must be a complete single-line JSON value (the
/// compact `serde_json::to_string` output qualifies).
pub fn encode_record(index: usize, id: &str, micros: u64, payload_json: &str) -> String {
    let mut line = String::with_capacity(payload_json.len() + id.len() + 48);
    line.push_str("{\"v\":1,\"index\":");
    line.push_str(&index.to_string());
    line.push_str(",\"id\":\"");
    escape_into(id, &mut line);
    line.push_str("\",\"micros\":");
    line.push_str(&micros.to_string());
    line.push_str(",\"payload\":");
    line.push_str(payload_json);
    line.push('}');
    line
}

/// Decodes one journal line.
///
/// # Errors
///
/// Returns a description of the first violated rule: invalid JSON, a
/// version other than [`FORMAT_VERSION`], or a missing/mistyped field.
pub fn decode_record(line: &str) -> Result<CheckpointRecord, String> {
    let value = JsonValue::parse(line).map_err(|e| format!("invalid journal record: {e}"))?;
    let version = value
        .get("v")
        .and_then(JsonValue::as_int)
        .ok_or("journal record is missing integer `v`")?;
    if version != FORMAT_VERSION {
        return Err(format!(
            "unsupported journal format version {version} (expected {FORMAT_VERSION})"
        ));
    }
    let index = value
        .get("index")
        .and_then(JsonValue::as_int)
        .and_then(|i| usize::try_from(i).ok())
        .ok_or("journal record is missing non-negative integer `index`")?;
    let id = value
        .get("id")
        .and_then(JsonValue::as_str)
        .ok_or("journal record is missing string `id`")?
        .to_string();
    let micros = value
        .get("micros")
        .and_then(JsonValue::as_int)
        .and_then(|m| u64::try_from(m).ok())
        .ok_or("journal record is missing non-negative integer `micros`")?;
    let payload = value
        .get("payload")
        .cloned()
        .ok_or("journal record is missing `payload`")?;
    Ok(CheckpointRecord {
        index,
        id,
        micros,
        payload,
    })
}

/// Replays a checkpoint journal against the grid described by `ids`,
/// returning the journaled `(micros, payload)` of every completed cell
/// (`None` for cells the journal does not cover).
///
/// A missing journal file resumes nothing (fresh run). A torn trailing
/// fragment is dropped with a warning on stderr. Duplicate indices are
/// last-wins.
///
/// # Errors
///
/// * [`JournalError::Io`] — the journal exists but cannot be read;
/// * [`JournalError::BadRecord`] — a complete line does not decode
///   ([`decode_record`]);
/// * [`JournalError::ForeignJournal`] — a record's `index`/`id` does
///   not match the grid: the journal belongs to a different grid, and
///   silently recomputing would mask the operator error.
pub fn load_resume(
    path: &Path,
    ids: &[String],
) -> Result<Vec<Option<(u64, JsonValue)>>, JournalError> {
    let mut completed: Vec<Option<(u64, JsonValue)>> = vec![None; ids.len()];
    if !path.exists() {
        return Ok(completed);
    }
    let replay = read_journal(path).map_err(|e| JournalError::Io {
        path: path.to_path_buf(),
        source: e,
    })?;
    if let Some(tail) = &replay.truncated_tail {
        eprintln!(
            "warning: {}: dropping torn trailing fragment ({} bytes) — its cell will re-run",
            path.display(),
            tail.len()
        );
    }
    for (lineno, line) in replay.lines.iter().enumerate() {
        let record = decode_record(line).map_err(|e| JournalError::BadRecord {
            path: path.to_path_buf(),
            line: lineno + 1,
            detail: e,
        })?;
        let expected = ids.get(record.index).ok_or_else(|| JournalError::ForeignJournal {
            path: path.to_path_buf(),
            line: lineno + 1,
            detail: format!(
                "cell index {} is outside this grid of {} cells",
                record.index,
                ids.len()
            ),
        })?;
        if *expected != record.id {
            return Err(JournalError::ForeignJournal {
                path: path.to_path_buf(),
                line: lineno + 1,
                detail: format!(
                    "cell {} is `{}` in this grid but `{}` in the journal",
                    record.index, expected, record.id
                ),
            });
        }
        completed[record.index] = Some((record.micros, record.payload));
    }
    Ok(completed)
}

/// Validates that every line of a checkpoint journal parses and that
/// the file ends on a record boundary (no truncated line) — the CI
/// check run after a SIGKILL mid-grid. Returns the record count.
///
/// # Errors
///
/// [`JournalError::Io`] for an unreadable file,
/// [`JournalError::TruncatedTail`] for a torn trailing line,
/// [`JournalError::BadRecord`] for the first undecodable record.
pub fn lint_journal(path: &Path) -> Result<usize, JournalError> {
    let replay = read_journal(path).map_err(|e| JournalError::Io {
        path: path.to_path_buf(),
        source: e,
    })?;
    if let Some(tail) = &replay.truncated_tail {
        return Err(JournalError::TruncatedTail {
            path: path.to_path_buf(),
            bytes: tail.len(),
        });
    }
    for (lineno, line) in replay.lines.iter().enumerate() {
        decode_record(line).map_err(|e| JournalError::BadRecord {
            path: path.to_path_buf(),
            line: lineno + 1,
            detail: e,
        })?;
    }
    Ok(replay.lines.len())
}

/// Serializes a [`Table`] as a single-line journal payload.
///
/// # Errors
///
/// Returns a description of the serializer failure. Tables are plain
/// string grids, so this cannot fail today — but the journaling path
/// must degrade (skip the record, keep the result) rather than panic,
/// so the impossibility is the *caller's* to absorb.
pub fn table_payload(table: &Table) -> Result<String, String> {
    serde_json::to_string(table).map_err(|e| format!("table does not serialize: {e}"))
}

/// Rebuilds a [`Table`] from a journaled payload.
///
/// # Errors
///
/// Returns a description of the first missing/mistyped field, or of a
/// row whose width differs from the headers.
pub fn table_from_payload(payload: &JsonValue) -> Result<Table, String> {
    let str_field = |key: &str| -> Result<String, String> {
        payload
            .get(key)
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("table payload is missing string `{key}`"))
    };
    let str_array = |value: &JsonValue, what: &str| -> Result<Vec<String>, String> {
        value
            .as_array()
            .ok_or_else(|| format!("{what} must be an array"))?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("{what} must contain only strings"))
            })
            .collect()
    };
    let headers = str_array(
        payload
            .get("headers")
            .ok_or("table payload is missing `headers`")?,
        "`headers`",
    )?;
    let rows: Vec<Vec<String>> = payload
        .get("rows")
        .and_then(JsonValue::as_array)
        .ok_or("table payload is missing array `rows`")?
        .iter()
        .map(|row| str_array(row, "`rows` entries"))
        .collect::<Result<_, _>>()?;
    for (i, row) in rows.iter().enumerate() {
        if row.len() != headers.len() {
            return Err(format!(
                "table payload row {i} has {} cells but {} headers",
                row.len(),
                headers.len()
            ));
        }
    }
    Ok(Table {
        id: str_field("id")?,
        title: str_field("title")?,
        headers,
        rows,
    })
}

/// Opens the journal writer for a checkpoint path (append mode).
///
/// # Errors
///
/// [`JournalError::Io`] wrapping the underlying open error.
pub fn open_journal(path: &Path) -> Result<JournalWriter, JournalError> {
    JournalWriter::append(path).map_err(|e| JournalError::Io {
        path: path.to_path_buf(),
        source: e,
    })
}

/// The result of a serial checkpointed grid
/// ([`run_serial_checkpointed`]): one slot and one outcome per cell,
/// in grid order.
#[derive(Debug)]
pub struct SerialGrid<T> {
    /// Per-cell results (`None` exactly where the cell failed).
    pub items: Vec<Option<T>>,
    /// Per-cell outcomes (`Ok` / `Failed` / `Skipped{resumed}`).
    pub outcomes: Vec<super::runner::RunOutcome>,
}

impl<T> SerialGrid<T> {
    /// The grid's results, if *every* cell completed.
    pub fn complete(self) -> Option<Vec<T>> {
        self.items.into_iter().collect()
    }

    /// Failure records for the cells that panicked.
    pub fn failures(&self, ids: &[String]) -> Vec<super::runner::CellFailure> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(index, outcome)| match outcome {
                super::runner::RunOutcome::Failed { panic_msg } => {
                    Some(super::runner::CellFailure {
                        index,
                        id: ids[index].clone(),
                        seed: None,
                        panic_msg: panic_msg.clone(),
                    })
                }
                _ => None,
            })
            .collect()
    }
}

/// Runs a grid of cells *serially* (the scaling benchmarks need timing
/// fidelity, so cells never share the machine) with the same crash
/// safety as [`run_cells_checked`](super::runner::run_cells_checked):
/// panic isolation per cell, checkpoint journaling of completed cells,
/// and resume. `encode`/`decode` map a cell's result to and from its
/// journal payload; resumed cells carry the journaled measurements, so
/// a resumed document reports exactly what the interrupted run
/// measured.
///
/// # Errors
///
/// Same as [`run_cells_checked`](super::runner::run_cells_checked):
/// configuration or journal errors, typed as [`JournalError`].
/// Panicking cells are reported, not propagated.
pub fn run_serial_checkpointed<T>(
    ids: &[String],
    cfg: &super::runner::GridConfig,
    encode: impl Fn(&T) -> String,
    decode: impl Fn(&JsonValue) -> Result<T, String>,
    run: impl Fn(usize) -> T,
) -> Result<SerialGrid<T>, JournalError> {
    use super::runner::RunOutcome;

    let mut resumed: Vec<Option<(u64, T)>> = (0..ids.len()).map(|_| None).collect();
    if cfg.resume {
        let path = cfg
            .checkpoint
            .as_deref()
            .ok_or_else(JournalError::resume_requires_checkpoint)?;
        for (i, slot) in load_resume(path, ids)?.into_iter().enumerate() {
            if let Some((micros, payload)) = slot {
                let item = decode(&payload).map_err(|e| JournalError::BadPayload {
                    path: path.to_path_buf(),
                    cell: i,
                    detail: e,
                })?;
                resumed[i] = Some((micros, item));
            }
        }
    }
    let mut journal = match &cfg.checkpoint {
        Some(path) => Some(open_journal(path)?),
        None => None,
    };

    let mut items = Vec::with_capacity(ids.len());
    let mut outcomes = Vec::with_capacity(ids.len());
    for (i, slot) in resumed.into_iter().enumerate() {
        if let Some((_micros, item)) = slot {
            items.push(Some(item));
            outcomes.push(RunOutcome::Skipped { resumed: true });
            continue;
        }
        let start = std::time::Instant::now();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if cfg.inject_panic == Some(i) {
                panic!("injected panic at cell {i} (`{}`)", ids[i]);
            }
            run(i)
        }));
        let micros = start.elapsed().as_micros() as u64;
        match result {
            Ok(item) => {
                if let Some(journal) = &mut journal {
                    let line = encode_record(i, &ids[i], micros, &encode(&item));
                    if let Err(e) = journal.append_line(&line) {
                        eprintln!(
                            "warning: checkpoint append failed for cell {i} (`{}`): {e}",
                            ids[i]
                        );
                    }
                }
                items.push(Some(item));
                outcomes.push(RunOutcome::Ok);
            }
            Err(payload) => {
                let panic_msg = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                items.push(None);
                outcomes.push(RunOutcome::Failed { panic_msg });
            }
        }
    }
    Ok(SerialGrid { items, outcomes })
}

/// Runs a grid of cells in *parallel* (via
/// [`run_grid`](super::runner::run_grid), so results land in input
/// order at any thread count) with the crash safety of
/// [`run_serial_checkpointed`]: panic isolation per cell, checkpoint
/// journaling of completed cells, and resume. The generic payload `T`
/// is what distinguishes this from
/// [`run_cells_checked`](super::runner::run_cells_checked), which is
/// specialized to [`Table`] cells — the adversary-search campaigns
/// journal whole campaign results instead.
///
/// Journal records are appended in *completion* order under a mutex;
/// replay is index-keyed, so record order never affects resume.
///
/// # Errors
///
/// Same as [`run_serial_checkpointed`]: configuration or journal
/// errors, typed as [`JournalError`]. Panicking cells are reported,
/// not propagated.
pub fn run_parallel_checkpointed<T: Send>(
    ids: &[String],
    cfg: &super::runner::GridConfig,
    encode: impl Fn(&T) -> String + Sync,
    decode: impl Fn(&JsonValue) -> Result<T, String>,
    run: impl Fn(usize) -> T + Sync,
) -> Result<SerialGrid<T>, JournalError> {
    use super::runner::RunOutcome;
    use std::sync::Mutex;

    let mut resumed: Vec<Option<(u64, T)>> = (0..ids.len()).map(|_| None).collect();
    if cfg.resume {
        let path = cfg
            .checkpoint
            .as_deref()
            .ok_or_else(JournalError::resume_requires_checkpoint)?;
        for (i, slot) in load_resume(path, ids)?.into_iter().enumerate() {
            if let Some((micros, payload)) = slot {
                let item = decode(&payload).map_err(|e| JournalError::BadPayload {
                    path: path.to_path_buf(),
                    cell: i,
                    detail: e,
                })?;
                resumed[i] = Some((micros, item));
            }
        }
    }
    let journal = match &cfg.checkpoint {
        Some(path) => Some(Mutex::new(open_journal(path)?)),
        None => None,
    };

    let pending: Vec<usize> = (0..ids.len()).filter(|&i| resumed[i].is_none()).collect();
    let fresh = super::runner::run_grid(&pending, cfg.threads, |&i| {
        let start = std::time::Instant::now();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if cfg.inject_panic == Some(i) {
                panic!("injected panic at cell {i} (`{}`)", ids[i]);
            }
            run(i)
        }));
        let micros = start.elapsed().as_micros() as u64;
        match result {
            Ok(item) => {
                if let Some(journal) = &journal {
                    let line = encode_record(i, &ids[i], micros, &encode(&item));
                    // A journal append failure must not fail the cell —
                    // the result is in hand; the cell simply re-runs on
                    // a future resume. A poisoned lock only means a
                    // sibling cell panicked mid-append; the writer is
                    // line-atomic, so recovering it is safe.
                    let mut writer = journal
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if let Err(e) = writer.append_line(&line) {
                        eprintln!(
                            "warning: checkpoint append failed for cell {i} (`{}`): {e}",
                            ids[i]
                        );
                    }
                }
                (Some(item), RunOutcome::Ok)
            }
            Err(payload) => {
                let panic_msg = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                (None, RunOutcome::Failed { panic_msg })
            }
        }
    });

    let mut fresh_iter = fresh.into_iter().map(|(slot, _micros)| slot);
    let mut items = Vec::with_capacity(ids.len());
    let mut outcomes = Vec::with_capacity(ids.len());
    for slot in resumed {
        match slot {
            Some((_micros, item)) => {
                items.push(Some(item));
                outcomes.push(RunOutcome::Skipped { resumed: true });
            }
            None => {
                let (item, outcome) = fresh_iter
                    .next()
                    .expect("one fresh result per pending cell");
                items.push(item);
                outcomes.push(outcome);
            }
        }
    }
    Ok(SerialGrid { items, outcomes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_through_encode_decode() {
        let line = encode_record(7, "thm\"1\"", 4242, r#"{"rank":3}"#);
        assert!(!line.contains('\n'));
        let rec = decode_record(&line).expect("decodes");
        assert_eq!(rec.index, 7);
        assert_eq!(rec.id, "thm\"1\"");
        assert_eq!(rec.micros, 4242);
        assert_eq!(
            rec.payload.get("rank").and_then(JsonValue::as_int),
            Some(3)
        );
    }

    #[test]
    fn decode_rejects_bad_records() {
        assert!(decode_record("not json").is_err());
        assert!(decode_record(r#"{"v":2,"index":0,"id":"a","micros":1,"payload":null}"#)
            .unwrap_err()
            .contains("version 2"));
        assert!(decode_record(r#"{"v":1,"id":"a","micros":1,"payload":null}"#)
            .unwrap_err()
            .contains("index"));
        assert!(decode_record(r#"{"v":1,"index":-1,"id":"a","micros":1,"payload":null}"#)
            .unwrap_err()
            .contains("index"));
        assert!(decode_record(r#"{"v":1,"index":0,"id":"a","micros":1}"#)
            .unwrap_err()
            .contains("payload"));
    }

    #[test]
    fn table_round_trips_through_payload() {
        let mut t = Table::new("E1", "A \"quoted\" title", &["n", "value"]);
        t.push_row(vec!["3".to_string(), "x,y\nz".to_string()]);
        let payload = table_payload(&t).expect("tables serialize");
        assert!(!payload.contains('\n'), "payload must stay single-line");
        let parsed = JsonValue::parse(&payload).expect("payload parses");
        assert_eq!(table_from_payload(&parsed).expect("rebuilds"), t);
    }

    #[test]
    fn table_payload_rejects_ragged_rows() {
        let parsed = JsonValue::parse(
            r#"{"id":"E","title":"t","headers":["a","b"],"rows":[["1"]]}"#,
        )
        .expect("parses");
        assert!(table_from_payload(&parsed).unwrap_err().contains("row 0"));
    }

    #[test]
    fn load_resume_is_last_wins_and_checks_ids() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("anonet-resume-{}.checkpoint.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let ids = vec!["a".to_string(), "b".to_string()];

        // Missing file: nothing resumed.
        let fresh = load_resume(&path, &ids).expect("missing journal is fine");
        assert_eq!(fresh, vec![None, None]);

        let mut w = JournalWriter::append(&path).unwrap();
        w.append_line(&encode_record(0, "a", 10, "1")).unwrap();
        w.append_line(&encode_record(0, "a", 20, "2")).unwrap();
        drop(w);
        let resumed = load_resume(&path, &ids).expect("loads");
        assert_eq!(resumed[0], Some((20, JsonValue::Int(2)))); // last wins
        assert_eq!(resumed[1], None);

        // An id mismatch is a hard error, not a silent recompute.
        let wrong = vec!["x".to_string(), "b".to_string()];
        let err = load_resume(&path, &wrong).unwrap_err();
        assert!(matches!(err, JournalError::ForeignJournal { .. }));
        assert!(err.to_string().contains("different grid"));
        // So is an out-of-range index.
        let err = load_resume(&path, &[]).unwrap_err();
        assert!(matches!(err, JournalError::ForeignJournal { .. }));
        assert!(err.to_string().contains("outside"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn parallel_checkpointed_resumes_and_matches_any_thread_count() {
        use crate::experiments::runner::{GridConfig, RunOutcome};
        let path = std::env::temp_dir().join(format!(
            "anonet-par-ckpt-{}.checkpoint.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let ids: Vec<String> = (0..6).map(|i| format!("cell-{i}")).collect();
        let encode = |v: &u64| v.to_string();
        let decode = |p: &JsonValue| {
            p.as_int()
                .and_then(|n| u64::try_from(n).ok())
                .ok_or_else(|| "not a u64".to_string())
        };
        let run = |i: usize| (i as u64) * 10 + 1;

        // Interrupted first run: cell 4 panics, the rest journal.
        let interrupted = GridConfig {
            threads: 1,
            checkpoint: Some(path.clone()),
            inject_panic: Some(4),
            ..GridConfig::default()
        };
        let grid =
            run_parallel_checkpointed(&ids, &interrupted, encode, decode, run).expect("runs");
        assert!(matches!(grid.outcomes[4], RunOutcome::Failed { .. }));
        assert_eq!(grid.failures(&ids)[0].id, "cell-4");
        assert!(grid.items[4].is_none());

        // Resume at a different thread count: journaled cells replay,
        // cell 4 re-runs, and the completed values match a fresh run.
        let resumed_cfg = GridConfig {
            threads: 4,
            checkpoint: Some(path.clone()),
            resume: true,
            ..GridConfig::default()
        };
        let resumed =
            run_parallel_checkpointed(&ids, &resumed_cfg, encode, decode, run).expect("resumes");
        assert_eq!(resumed.outcomes[0], RunOutcome::Skipped { resumed: true });
        assert_eq!(resumed.outcomes[4], RunOutcome::Ok);
        let values = resumed.complete().expect("all cells complete");
        assert_eq!(values, vec![1, 11, 21, 31, 41, 51]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lint_flags_truncation_and_garbage() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("anonet-lint-{}.checkpoint.jsonl", std::process::id()));
        let good = encode_record(0, "a", 1, "null");
        std::fs::write(&path, format!("{good}\n")).unwrap();
        assert_eq!(lint_journal(&path).expect("clean journal"), 1);
        std::fs::write(&path, format!("{good}\n{{\"v\":1,\"ind")).unwrap();
        let err = lint_journal(&path).unwrap_err();
        assert!(matches!(err, JournalError::TruncatedTail { bytes: 11, .. }));
        assert!(err.to_string().contains("truncated"));
        std::fs::write(&path, "garbage\n").unwrap();
        assert!(matches!(
            lint_journal(&path).unwrap_err(),
            JournalError::BadRecord { line: 1, .. }
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
