//! Extension experiments beyond the paper's headline results: the
//! general-`k` kernel structure, adversary ablations, and the
//! unlimited-bandwidth requirement.

use anonet_core::cost::{measure_adversary_ablation, measure_state_growth};
use anonet_core::experiment::Table;
use anonet_linalg::gauss;
use anonet_multigraph::adversary::{SurplusPlacement, TwinBuilder};
use anonet_multigraph::system_k::GeneralSystem;
use anonet_multigraph::LeaderState;

/// E15 (extension): the general-`k` observation system. The kernel
/// dimension collapses to 1 only for `k = 2`; for `k ≥ 3` ambiguity
/// *grows* with the round, which is why proving the bound for `k = 2`
/// suffices for all `M(DBL)_k` (Theorem 1's containment).
pub fn general_k() -> Table {
    let mut t = Table::new(
        "E15 (general k)",
        "kernel dimension of M_r^(k): predicted (cols - rows) vs exact elimination",
        &["k", "r", "rows", "cols", "nullity (exact)", "predicted"],
    );
    for k in 1..=4u8 {
        let sys = GeneralSystem::new(k).expect("k in range");
        for r in 0..=2usize {
            let Ok(matrix) = sys.observation_matrix(r) else {
                continue;
            };
            if matrix.cols() > 500 {
                continue;
            }
            let dense = matrix.to_dense().expect("densifies");
            let ech = gauss::rref(&dense).expect("exact");
            let predicted = sys.predicted_nullity(r).expect("in range");
            assert_eq!(ech.nullity(), predicted, "rows independent: k={k} r={r}");
            t.push_row(vec![
                k.to_string(),
                r.to_string(),
                sys.row_count(r).expect("in range").to_string(),
                sys.column_count(r).expect("in range").to_string(),
                ech.nullity().to_string(),
                predicted.to_string(),
            ]);
        }
    }
    t
}

/// E15b (extension): the *ambiguity width* for general `k`, by exhaustive
/// lattice enumeration — how many candidate sizes the leader cannot rule
/// out after one round, for the "one node per label set" network.
pub fn general_k_ambiguity() -> Table {
    use anonet_multigraph::{DblMultigraph, LabelSet};
    let mut t = Table::new(
        "E15b (general k ambiguity)",
        "candidate sizes after round 0 for the one-node-per-label-set network",
        &["k", "true n = 2^k - 1", "feasible sizes", "count"],
    );
    for k in 2..=3u8 {
        let q = (1u32 << k) - 1;
        let all: Vec<LabelSet> = (1..=q)
            .map(|mask| LabelSet::from_mask(mask, k).expect("valid"))
            .collect();
        let m = DblMultigraph::new(k, vec![all]).expect("valid multigraph");
        let sys = GeneralSystem::new(k).expect("k in range");
        let pops = sys
            .feasible_populations(&m, 1, 5_000_000)
            .expect("enumerates");
        assert!(pops.contains(&(q as i64)), "truth feasible for k={k}");
        let rendered = if pops.len() > 12 {
            format!(
                "{}..{} ({} values)",
                pops.first().expect("non-empty"),
                pops.last().expect("non-empty"),
                pops.len()
            )
        } else {
            format!("{pops:?}")
        };
        t.push_row(vec![
            k.to_string(),
            q.to_string(),
            rendered,
            pops.len().to_string(),
        ]);
    }
    t
}

/// E16 (ablation): how much of the cost is the *adversary*? The same
/// optimal algorithm against worst-case, fair-random and static
/// adversaries.
pub fn adversary_ablation() -> Table {
    let mut t = Table::new(
        "E16 (adversary ablation)",
        "optimal counting rounds under worst-case vs fair-random vs static adversaries",
        &[
            "n",
            "worst case",
            "random (mean of 20)",
            "random (max of 20)",
            "static",
        ],
    );
    for (i, &n) in [4u64, 13, 40, 121, 364].iter().enumerate() {
        let a = measure_adversary_ablation(n, 20, 100 + i as u64).expect("measures");
        assert!(a.random_rounds_max <= a.worst_case_rounds);
        t.push_row(vec![
            n.to_string(),
            a.worst_case_rounds.to_string(),
            format!("{:.2}", a.random_rounds_mean_x100 as f64 / 100.0),
            a.random_rounds_max.to_string(),
            a.static_rounds.to_string(),
        ]);
    }
    t
}

/// E17 (ablation): the twin construction's surplus placement does not
/// matter — any placement covering the negative histories sustains the
/// full Lemma 5 horizon.
pub fn placement_ablation() -> Table {
    let mut t = Table::new(
        "E17 (placement ablation)",
        "twin surplus placement: dump-on-first vs spread — identical horizons",
        &[
            "n",
            "placement",
            "max census entry",
            "agree through round",
            "horizon",
        ],
    );
    for &n in &[20u64, 50, 200, 1000] {
        for (name, placement) in [
            ("first-negative", SurplusPlacement::FirstNegative),
            ("spread", SurplusPlacement::Spread),
        ] {
            let pair = TwinBuilder::new()
                .with_placement(placement)
                .build(n)
                .expect("twins build");
            let rounds = pair.horizon as usize + 1;
            let agree = LeaderState::observe(&pair.smaller, rounds + 1)
                .agreement_rounds(&LeaderState::observe(&pair.larger, rounds + 1), rounds + 1);
            assert_eq!(agree, rounds, "horizon independent of placement");
            let census = anonet_multigraph::Census::of_multigraph(&pair.smaller, rounds);
            t.push_row(vec![
                n.to_string(),
                name.into(),
                census
                    .counts()
                    .iter()
                    .max()
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
                (agree as i64 - 1).to_string(),
                pair.horizon.to_string(),
            ]);
        }
    }
    t
}

/// E19 (extension): counting on the anonymous *graph* side of Lemma 1.
/// The exact view-counting rule on `G(PD)_2` decides correctly, but the
/// anonymity of the relays costs extra rounds over the labeled
/// `M(DBL)_2` optimum — measured head-to-head on the same instances.
pub fn pd2_view_counting() -> Table {
    use anonet_core::algorithms::{run_pd2_view_counting, KernelCounting, Pd2ViewError};
    use anonet_multigraph::adversary::RandomDblAdversary;
    use anonet_multigraph::transform;

    let mut t = Table::new(
        "E19 (PD2 view counting)",
        "exact counting on anonymous G(PD)_2 vs the labeled M(DBL)_2 optimum",
        &["instance", "n", "M(DBL)_2 rounds", "G(PD)_2 rounds", "note"],
    );
    let mut adv =
        RandomDblAdversary::new(<rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(77));
    for (i, n) in [2u64, 3, 4, 5, 6].into_iter().enumerate() {
        let m = adv.generate(n, 10).expect("generates");
        let dbl = KernelCounting::new()
            .run(&m, 10)
            .map(|o| o.rounds.to_string())
            .unwrap_or_else(|_| "-".into());
        let net = transform::to_pd2(&m, 10).expect("transforms");
        let (pd2, note) = match run_pd2_view_counting(net, 9, 2_000_000) {
            Ok(out) => {
                assert_eq!(out.count as usize, m.nodes() + 3);
                (out.rounds.to_string(), "exact".to_string())
            }
            Err(Pd2ViewError::Undecided { candidates, .. }) => {
                assert!(candidates.contains(&(n as i64)));
                ("-".into(), format!("still ambiguous: {candidates:?}"))
            }
            Err(e) => panic!("unexpected: {e}"),
        };
        t.push_row(vec![format!("random #{i}"), n.to_string(), dbl, pd2, note]);
    }
    t
}

/// E21 (systems): the cost of simulating the information-theoretic
/// envelope — distinct hash-consed views created while executing the
/// full-information protocol on worst-case `G(PD)_2` twins. Hash-consing
/// keeps the count polynomial even though materialized views would be
/// exponentially large.
pub fn view_complexity() -> Table {
    use anonet_multigraph::transform;
    use anonet_netsim::{run_full_information, ViewInterner};

    let mut t = Table::new(
        "E21 (view complexity)",
        "hash-consed view count vs rounds on worst-case G(PD)_2 instances",
        &["n", "|V|", "rounds", "distinct views interned", "views per node-round"],
    );
    for &n in &[13u64, 121, 1093] {
        let pair = TwinBuilder::new().build(n).expect("twins build");
        let rounds = pair.horizon + 4;
        let mut net = transform::to_pd2(&pair.smaller, rounds as usize)
            .expect("transforms");
        let order = pair.smaller.nodes() + 3;
        let mut interner = ViewInterner::new();
        let run = run_full_information(&mut net, rounds, &mut interner);
        assert_eq!(run.rounds(), rounds as usize);
        let per = interner.len() as f64 / (order as f64 * rounds as f64);
        assert!(
            per <= 2.0,
            "hash-consing keeps views near-linear: {per:.2} per node-round"
        );
        t.push_row(vec![
            n.to_string(),
            order.to_string(),
            rounds.to_string(),
            interner.len().to_string(),
            format!("{per:.3}"),
        ]);
    }
    t
}

/// E18 (model requirement): the leader's per-round observation grows
/// geometrically in distinct states — unlimited bandwidth is load-bearing.
pub fn state_growth() -> Table {
    let mut t = Table::new(
        "E18 (state growth)",
        "distinct (label, state) pairs the leader receives per round (worst case)",
        &["n", "round", "deliveries", "distinct (label, state) pairs"],
    );
    for &n in &[40u64, 364, 3280] {
        let g = measure_state_growth(n).expect("measures");
        for (r, (&d, &s)) in g.deliveries.iter().zip(&g.distinct_states).enumerate() {
            t.push_row(vec![
                n.to_string(),
                r.to_string(),
                d.to_string(),
                s.to_string(),
            ]);
        }
    }
    t
}
