//! E24: the socketed peer runtime cross-validated against the
//! in-memory oracle.
//!
//! The `anonet-net` crate re-runs the guarded counting sessions over
//! real loopback TCP — peers as threads with sockets, fault plans
//! projected onto wire behaviour by proxies. These experiments are the
//! CI face of that subsystem: every cell *asserts* its contract
//! in-process (a violated contract panics the cell and `run_and_emit`
//! exits non-zero) and tabulates what happened for `EXPERIMENTS.md`.
//!
//! * [`net_cross_validation`] — named fault-plan families × both
//!   algorithms over ≥ 8 loopback peers; the socketed verdict must
//!   equal the simulator's exactly, and frames must really be rewritten
//!   on the wire where the plan demands it.
//! * [`net_watchdog`] — out-of-model wire failures (a peer that hangs
//!   with its socket open, a roster that never assembles): each must
//!   surface as the *typed* error the runtime promises, inside its
//!   deadline budget, with a fail-closed verdict — never a wedge, never
//!   a count.
//! * [`net_e22_replay`] — the archived E22a silent-wrong schedules
//!   replayed at the socket layer: the plans that once fooled an
//!   unguarded in-memory leader must not extract a wrong count from the
//!   socketed runtime either.

use anonet_core::experiment::Table;
use anonet_core::transport::TransportAlgorithm;
use anonet_core::verdict::{FaultPlan, Verdict};
use anonet_multigraph::adversary::TwinBuilder;
use anonet_multigraph::corpus::ArchivedSchedule;
use anonet_net::{cross_validate, run_socketed, NetError, SocketConfig, Timing};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// A compact, stable label for a verdict (used in table rows).
fn verdict_label(v: &Verdict) -> String {
    match v {
        Verdict::Correct { count, rounds } => format!("correct(count={count}, r={rounds})"),
        Verdict::Undecided { rounds, .. } => format!("undecided(r={rounds})"),
        Verdict::ModelViolation { kind, round } => {
            format!("violation({kind:?}, r={round})")
        }
    }
}

/// The named fault-plan families every socketed cross-validation runs.
fn plan_families() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("clean", FaultPlan::new()),
        ("drop", FaultPlan::new().drop_deliveries(1, 4, 0)),
        ("duplicate", FaultPlan::new().duplicate_deliveries(2, 3, 1)),
        ("disconnect", FaultPlan::new().disconnect(2)),
        ("crash", FaultPlan::new().crash_nodes(1, 2)),
        ("restart", FaultPlan::new().leader_restart(2)),
        (
            "stacked",
            FaultPlan::new()
                .drop_deliveries(1, 3, 1)
                .crash_nodes(2, 1)
                .leader_restart(3),
        ),
    ]
}

/// E24a: socketed verdict vs in-memory oracle across fault-plan
/// families and both algorithms, over ≥ 8 loopback peers.
///
/// Asserts in-process that every socketed verdict equals the oracle's
/// and that faulted families actually rewrite frames on the wire.
pub fn net_cross_validation(quick: bool) -> Table {
    let mut t = Table::new(
        "E24a (net: cross-validation)",
        "socketed runtime vs in-memory oracle across fault-plan families",
        &[
            "family",
            "algorithm",
            "n",
            "socketed verdict",
            "oracle verdict",
            "match",
            "retransmits",
            "rewritten frames",
            "churn events",
        ],
    );
    let sizes: &[u64] = if quick { &[8] } else { &[8, 13] };
    for &n in sizes {
        let pair = TwinBuilder::new().build(n).expect("twins build");
        let horizon = pair.horizon + 4;
        for (family, plan) in plan_families() {
            for alg in [TransportAlgorithm::Kernel, TransportAlgorithm::HistoryTree] {
                let cv = cross_validate(alg, &pair.smaller, horizon, &plan, &SocketConfig::default())
                    .unwrap_or_else(|e| panic!("{family}/{}/n={n}: {e}", alg.name()));
                assert!(
                    cv.verdicts_match(),
                    "CROSS-VALIDATION VIOLATION: {family}/{}/n={n}: socketed {:?} != oracle {:?}",
                    alg.name(),
                    cv.report.verdict,
                    cv.oracle
                );
                // The zero-silent-wrong guarantee is the kernel's: its
                // watchdogs are documented to catch every wrong count,
                // while the history-tree screens can slip crash-class
                // faults (see `history_tree_verdict`). The socketed
                // contract asserted above — verdict equals the oracle's
                // — holds for both.
                if alg == TransportAlgorithm::Kernel {
                    if let Verdict::Correct { count, .. } = cv.report.verdict {
                        assert_eq!(
                            count,
                            n,
                            "SAFETY VIOLATION: {family}/kernel/n={n}: socketed wrong count"
                        );
                    }
                }
                if family == "drop" || family == "duplicate" {
                    assert!(
                        cv.report.rewritten_frames > 0,
                        "{family}/{}/n={n}: the plan was not projected onto the wire",
                        alg.name()
                    );
                }
                let retransmits: u32 = cv.report.peers.iter().map(|p| p.retransmits).sum();
                t.push_row(vec![
                    family.to_string(),
                    alg.name().to_string(),
                    n.to_string(),
                    verdict_label(&cv.report.verdict),
                    verdict_label(&cv.oracle),
                    "yes".to_string(), // asserted above
                    retransmits.to_string(),
                    cv.report.rewritten_frames.to_string(),
                    cv.report.leader.crashed.len().to_string(),
                ]);
            }
        }
    }
    t
}

/// E24b: out-of-model wire failures surface as typed errors with
/// fail-closed verdicts, inside the deadline budget.
pub fn net_watchdog(_quick: bool) -> Table {
    let mut t = Table::new(
        "E24b (net: watchdog)",
        "out-of-model wire failures: typed errors, fail-closed verdicts, bounded time",
        &["scenario", "verdict", "typed error", "within budget"],
    );
    let pair = TwinBuilder::new().build(8).expect("twins build");
    let horizon = pair.horizon + 4;

    // A peer that hangs mid-run with its socket open: the barrier must
    // time out typed and the session must fail closed, well inside the
    // hang budget plus one round deadline.
    let hang_cfg = SocketConfig {
        hang_peer: Some((2, 1)),
        ..SocketConfig::default()
    };
    let started = Instant::now();
    let report = run_socketed(
        TransportAlgorithm::Kernel,
        &pair.smaller,
        horizon,
        &FaultPlan::new(),
        &hang_cfg,
    )
    .expect("a hung peer degrades the run, it does not abort it");
    let elapsed = started.elapsed();
    assert!(
        matches!(report.verdict, Verdict::Undecided { .. }),
        "a hung peer must fail closed, got {:?}",
        report.verdict
    );
    let err = report.net_error.expect("the timeout is typed and reported");
    assert!(
        err.contains("barrier timed out"),
        "expected a RoundTimeout, got: {err}"
    );
    // Generous bound: the hang itself plus a handful of round deadlines
    // and the retry budget — far below "wedged", far above jitter.
    let fast = Timing::fast();
    let budget = fast.hang_for + fast.accept_deadline + fast.round_deadline * 10;
    assert!(
        elapsed < budget,
        "timeout took {elapsed:?}, budget {budget:?} — the watchdog is not bounding the run"
    );
    t.push_row(vec![
        "hung peer (socket open, silent)".to_string(),
        verdict_label(&report.verdict),
        err,
        format!("{}ms < {}ms", elapsed.as_millis(), budget.as_millis()),
    ]);

    // A roster that never assembles: a typed accept timeout, not a hang.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let started = Instant::now();
    let err = match anonet_net::SocketLeader::accept_peers(listener, 3, horizon, Timing::fast()) {
        Ok(_) => panic!("an empty roster must not assemble"),
        Err(e) => e,
    };
    let elapsed = started.elapsed();
    assert!(
        matches!(err, NetError::AcceptTimeout { expected: 3, got: 0 }),
        "expected a typed AcceptTimeout, got: {err}"
    );
    t.push_row(vec![
        "missing peers (no one dials)".to_string(),
        "no run".to_string(),
        err.to_string(),
        format!("{}ms", elapsed.as_millis()),
    ]);
    t
}

/// The archived E22a silent-wrong schedules committed to the workspace
/// corpus.
fn silent_wrong_corpus() -> Vec<(PathBuf, ArchivedSchedule)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("the workspace corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("e22a-silent-wrong") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "the E22a representatives are committed");
    files
        .into_iter()
        .map(|path| {
            let text = std::fs::read_to_string(&path).expect("readable corpus file");
            let entry = ArchivedSchedule::parse(&text)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            (path, entry)
        })
        .collect()
}

/// E24c: the E22a silent-wrong corpus replayed at the socket layer.
///
/// Asserts in-process that no archived plan extracts a wrong count from
/// the socketed runtime and that every socketed verdict equals the
/// guarded oracle's.
pub fn net_e22_replay(quick: bool) -> Table {
    let mut t = Table::new(
        "E24c (net: E22a replay)",
        "archived silent-wrong schedules replayed over loopback TCP",
        &["schedule", "n", "socketed verdict", "oracle verdict", "match"],
    );
    let corpus = silent_wrong_corpus();
    let take = if quick { 2.min(corpus.len()) } else { corpus.len() };
    for (path, entry) in corpus.into_iter().take(take) {
        assert_eq!(entry.algorithm, "kernel", "{}", path.display());
        let m = entry.schedule.multigraph().expect("archived rounds are valid");
        let n = entry.schedule.nodes() as u64;
        let cv = cross_validate(
            TransportAlgorithm::Kernel,
            &m,
            entry.schedule.horizon(),
            entry.schedule.plan(),
            &SocketConfig::default(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            cv.verdicts_match(),
            "{}: socketed {:?} != oracle {:?}",
            path.display(),
            cv.report.verdict,
            cv.oracle
        );
        if let Verdict::Correct { count, .. } = cv.report.verdict {
            assert_eq!(
                count,
                n,
                "SAFETY VIOLATION: {}: the socketed runtime reproduced a silent-wrong count",
                path.display()
            );
        }
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("?")
            .to_string();
        t.push_row(vec![
            name,
            n.to_string(),
            verdict_label(&cv.report.verdict),
            verdict_label(&cv.oracle),
            "yes".to_string(), // asserted above
        ]);
    }
    t
}
