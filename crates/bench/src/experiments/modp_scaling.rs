//! Mod-p vs exact incremental kernel maintenance (`exp_modp_scaling`).
//!
//! Times the two incremental rank/nullity watchers the counting
//! algorithms can run per round:
//!
//! * **exact** — the rational [`KernelTracker`] (or its paper-system
//!   wrapper [`ObservationKernel`]), reducing each appended row with
//!   exact [`Ratio`](anonet_linalg::Ratio) arithmetic;
//! * **modp** — the [`ModpKernelTracker`] over the fixed 62-bit prime
//!   field `F_P`, `P = 2^62 − 57`, doing the same forward elimination in
//!   branch-free `u64` Montgomery arithmetic.
//!
//! Two cell families cover the `(n, r)` grid:
//!
//! * `M_r` — the paper's observation system maintained across rounds
//!   `0..=r`;
//! * `random` — seeded low-rank append trajectories of `n` rows over
//!   `3^r` columns (same construction as `exp_linalg_scaling`).
//!
//! Cells up to the `exp_linalg_scaling` grid boundary are **shared**:
//! both arms are timed and the mod-p rank is cross-checked (un-timed)
//! against the exact rank after every append. Larger cells
//! (`n ∈ {256, 512, 1024}`, `M_4`, `M_5`) are **mod-p only** — the
//! exact arm would dominate the run — and are instead certified against
//! structural invariants (Lemma 2's `dim ker M_r = 1` for `M_r` cells,
//! the construction rank bound for `random` cells).
//!
//! The emitted document (`BENCH_modp.json`) is validated in-process by
//! [`validate_doc`]; full runs additionally pass [`check_gates`]:
//! ≥ 5× over the exact tracker at the largest shared cell, and at least
//! one `n ≥ 512` cell finishing under the exact tracker's committed
//! `n = 128` time (16,704 µs in `BENCH_linalg.json`).

use anonet_core::experiment::Table;
use anonet_linalg::{KernelTracker, ModpKernelTracker, SolverBackend};
use anonet_multigraph::system::{self, ObservationKernel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;
use std::hint::black_box;
use std::time::Instant;

/// The exact tracker's committed `n = 128, r = 4` trajectory time from
/// `BENCH_linalg.json` — the anchor an `n ≥ 512` mod-p cell must beat.
pub const EXACT_N128_BASELINE_MICROS: u64 = 16_704;

/// Grid size selector for [`run_scaling`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grid {
    /// Tiny cells for schema smoke tests (sub-second even in debug).
    Smoke,
    /// Reduced grid for `--quick` runs.
    Quick,
    /// The full grid behind the committed `BENCH_modp.json`.
    Full,
}

/// One timed cell of the mod-p scaling grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModpCell {
    /// Cell family: `"M_r"` or `"random"`.
    pub family: &'static str,
    /// Human-readable grid coordinates, e.g. `"n=512,r=4"`.
    pub cell: String,
    /// Rows appended over the trajectory.
    pub rows: usize,
    /// Columns of the final system.
    pub cols: usize,
    /// Wall-clock microseconds for the exact trajectory (`None` on
    /// mod-p-only cells).
    pub exact_micros: Option<u64>,
    /// Wall-clock microseconds for the mod-p trajectory.
    pub modp_micros: u64,
}

impl ModpCell {
    /// Exact-over-modp wall-clock ratio; `None` on mod-p-only cells.
    pub fn speedup(&self) -> Option<f64> {
        self.exact_micros
            .map(|e| e as f64 / self.modp_micros.max(1) as f64)
    }
}

/// Minimum wall-clock micros of `reps` executions of `f` (at least 1).
fn time_micros(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_micros() as u64);
    }
    best.max(1)
}

/// The paper-system family: maintain `M_0 ⊂ M_1 ⊂ … ⊂ M_r` on both
/// backends (`shared = false` skips the exact arm).
fn mr_cell(r: usize, shared: bool) -> ModpCell {
    // Un-timed agreement gate. Shared cells check the mod-p nullity
    // against the exact one per round; mod-p-only cells check Lemma 2's
    // closed form (rank = rows, dim ker = 1) directly.
    let mut modp = ObservationKernel::with_backend(SolverBackend::ModpCertified);
    if shared {
        let mut exact = ObservationKernel::new();
        for level in 0..=r {
            exact.push_round().expect("push exact round");
            modp.push_round().expect("push modp round");
            assert_eq!(
                modp.nullity(),
                exact.nullity(),
                "M_{level}: mod-p nullity must match exact"
            );
        }
    } else {
        for _ in 0..=r {
            modp.push_round().expect("push modp round");
        }
    }
    assert_eq!(modp.rank(), system::row_count(r), "Lemma 2 rank at r={r}");
    assert_eq!(modp.nullity(), 1, "Lemma 2 nullity at r={r}");

    let reps = if r >= 3 { 2 } else { 5 };
    let exact_micros = shared.then(|| {
        time_micros(reps, || {
            let mut k = ObservationKernel::new();
            let mut sink = 0u64;
            for _ in 0..=r {
                k.push_round().expect("push exact round");
                sink ^= k.nullity() as u64;
            }
            black_box(sink);
        })
    });
    let modp_micros = time_micros(reps, || {
        let mut k = ObservationKernel::with_backend(SolverBackend::ModpCertified);
        let mut sink = 0u64;
        for _ in 0..=r {
            k.push_round().expect("push modp round");
            sink ^= k.nullity() as u64;
        }
        black_box(sink);
    });

    ModpCell {
        family: "M_r",
        cell: format!("r={r}"),
        rows: system::row_count(r),
        cols: system::column_count(r),
        exact_micros,
        modp_micros,
    }
}

/// Seeded `n`-row trajectory over `cols` columns with rank ≤ `rank` —
/// the same construction as `exp_linalg_scaling`'s random family.
fn random_rows(n: usize, cols: usize, rank: usize, seed: u64) -> Vec<Vec<i64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let basis: Vec<Vec<i64>> = (0..rank)
        .map(|_| (0..cols).map(|_| rng.gen_range(-1i64..=1)).collect())
        .collect();
    (0..n)
        .map(|_| {
            let mut row = vec![0i64; cols];
            for _ in 0..3 {
                let b = rng.gen_range(0..rank);
                let c = rng.gen_range(-1i64..=1);
                for (x, y) in row.iter_mut().zip(&basis[b]) {
                    *x += c * *y;
                }
            }
            row
        })
        .collect()
}

/// The random family: append `n` seeded rows over `3^r` columns,
/// querying the rank after every append on both arms.
fn random_cell(n: usize, r: u32, rank: usize, seed: u64, shared: bool) -> ModpCell {
    let cols = 3usize.pow(r);
    let rows = random_rows(n, cols, rank, seed);

    // Un-timed agreement gate.
    let mut modp = ModpKernelTracker::new(cols);
    if shared {
        let mut exact = KernelTracker::new(cols);
        for row in &rows {
            exact.append_row_i64(row).expect("exact append");
            modp.append_row_i64(row).expect("modp append");
            assert_eq!(modp.rank(), exact.rank(), "rank mismatch at n={n}, r={r}");
            assert_eq!(modp.pivots(), exact.pivots(), "pivots at n={n}, r={r}");
        }
    } else {
        for row in &rows {
            modp.append_row_i64(row).expect("modp append");
        }
        // The construction bounds the true rank by the basis size.
        assert!(modp.rank() <= rank, "construction rank bound at n={n}");
        assert_eq!(modp.nullity(), cols - modp.rank());
    }

    let reps = if n >= 96 { 1 } else { 3 };
    let exact_micros = shared.then(|| {
        time_micros(reps, || {
            let mut t = KernelTracker::new(cols);
            let mut sink = 0u64;
            for row in &rows {
                t.append_row_i64(row).expect("exact append");
                sink ^= t.rank() as u64;
            }
            black_box(sink);
        })
    });
    let modp_micros = time_micros(reps.max(3), || {
        let mut t = ModpKernelTracker::new(cols);
        let mut sink = 0u64;
        for row in &rows {
            t.append_row_i64(row).expect("modp append");
            sink ^= t.rank() as u64;
        }
        black_box(sink);
    });

    ModpCell {
        family: "random",
        cell: format!("n={n},r={r}"),
        rows: n,
        cols,
        exact_micros,
        modp_micros,
    }
}

/// `(n, r, rank, seed)` coordinates of one random-family cell.
type RandomSpec = (usize, u32, usize, u64);

/// Pre-run coordinates of one grid cell — computable *before* the cell
/// runs, which is what lets the checkpoint runner identify journaled
/// cells across resumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSpec {
    /// One `M_r`-family cell.
    Mr {
        /// Top round index.
        r: usize,
        /// Whether the exact arm is timed too.
        shared: bool,
    },
    /// One random-family cell.
    Random {
        /// Rows appended over the trajectory.
        n: usize,
        /// Column exponent (`3^r` columns).
        r: u32,
        /// Basis size bounding the construction rank.
        rank: usize,
        /// RNG seed of the trajectory.
        seed: u64,
        /// Whether the exact arm is timed too.
        shared: bool,
    },
}

impl CellSpec {
    /// Stable identifier used in checkpoint journals.
    pub fn id(&self) -> String {
        match *self {
            CellSpec::Mr { r, shared } => {
                format!("M_r:r={r}{}", if shared { "" } else { ":modp-only" })
            }
            CellSpec::Random {
                n, r, seed, shared, ..
            } => format!(
                "random:n={n},r={r},seed={seed}{}",
                if shared { "" } else { ":modp-only" }
            ),
        }
    }

    /// Runs the cell (serially, for timing fidelity).
    ///
    /// # Panics
    ///
    /// Panics if a cross-check between the two backends (or against the
    /// structural invariants) fails — the checkpoint runner catches
    /// this into a `CellFailure`.
    pub fn run(&self) -> ModpCell {
        match *self {
            CellSpec::Mr { r, shared } => mr_cell(r, shared),
            CellSpec::Random {
                n,
                r,
                rank,
                seed,
                shared,
            } => random_cell(n, r, rank, seed, shared),
        }
    }
}

/// The grid's cell specs, in grid order.
pub fn grid_specs(grid: Grid) -> Vec<CellSpec> {
    // Shared specs mirror `exp_linalg_scaling`'s grid (both arms timed);
    // the extended `n ∈ {256, 512, 1024}` cells are mod-p only.
    let (mr_shared, mr_only, shared, only): (&[usize], &[usize], &[RandomSpec], &[RandomSpec]) =
        match grid {
            Grid::Smoke => (&[1], &[], &[(16, 2, 4, 101)], &[]),
            Grid::Quick => (
                &[1, 2],
                &[4],
                &[(32, 2, 6, 101), (64, 3, 10, 202)],
                &[(256, 4, 24, 505)],
            ),
            Grid::Full => (
                &[1, 2, 3],
                &[4, 5],
                &[(32, 2, 6, 101), (64, 3, 10, 202), (128, 4, 20, 404)],
                &[(256, 4, 24, 505), (512, 4, 24, 606), (1024, 4, 28, 707)],
            ),
        };
    let mut specs: Vec<CellSpec> = mr_shared
        .iter()
        .map(|&r| CellSpec::Mr { r, shared: true })
        .collect();
    specs.extend(mr_only.iter().map(|&r| CellSpec::Mr { r, shared: false }));
    specs.extend(shared.iter().map(|&(n, r, rank, seed)| CellSpec::Random {
        n,
        r,
        rank,
        seed,
        shared: true,
    }));
    specs.extend(only.iter().map(|&(n, r, rank, seed)| CellSpec::Random {
        n,
        r,
        rank,
        seed,
        shared: false,
    }));
    specs
}

/// Runs the scaling grid serially (timing fidelity) and returns its
/// cells in grid order.
pub fn run_scaling(grid: Grid) -> Vec<ModpCell> {
    grid_specs(grid).iter().map(CellSpec::run).collect()
}

/// Serializes a cell as a single-line checkpoint payload.
///
/// The payload carries only strings and integers — `speedup` is a
/// derived float and is recomputed from the timings, which keeps the
/// journal parseable by [`anonet_trace::json`] (floats round-trip
/// unreliably and are rejected there).
pub fn cell_payload(cell: &ModpCell) -> String {
    let mut entries = vec![
        ("family".to_string(), Value::Str(cell.family.to_string())),
        ("cell".to_string(), Value::Str(cell.cell.clone())),
        ("rows".to_string(), Value::Int(cell.rows as i128)),
        ("cols".to_string(), Value::Int(cell.cols as i128)),
        (
            "modp_micros".to_string(),
            Value::Int(cell.modp_micros as i128),
        ),
    ];
    if let Some(e) = cell.exact_micros {
        entries.push(("exact_micros".to_string(), Value::Int(e as i128)));
    }
    serde_json::to_string(&Value::Object(entries)).expect("cell serializes")
}

/// Rebuilds a cell from a checkpoint payload.
///
/// # Errors
///
/// Returns a description of the first missing/mistyped field or of an
/// unknown family.
pub fn cell_from_payload(payload: &anonet_trace::json::JsonValue) -> Result<ModpCell, String> {
    use anonet_trace::json::JsonValue;
    let int_field = |key: &str| -> Result<i128, String> {
        payload
            .get(key)
            .and_then(JsonValue::as_int)
            .ok_or_else(|| format!("cell payload is missing integer `{key}`"))
    };
    let family = match payload.get("family").and_then(JsonValue::as_str) {
        Some("M_r") => "M_r",
        Some("random") => "random",
        Some(other) => return Err(format!("unknown cell family `{other}`")),
        None => return Err("cell payload is missing string `family`".to_string()),
    };
    let as_usize = |v: i128, key: &str| {
        usize::try_from(v).map_err(|_| format!("cell payload `{key}` out of range"))
    };
    let as_u64 =
        |v: i128, key: &str| u64::try_from(v).map_err(|_| format!("cell payload `{key}` out of range"));
    Ok(ModpCell {
        family,
        cell: payload
            .get("cell")
            .and_then(JsonValue::as_str)
            .ok_or("cell payload is missing string `cell`")?
            .to_string(),
        rows: as_usize(int_field("rows")?, "rows")?,
        cols: as_usize(int_field("cols")?, "cols")?,
        exact_micros: match payload.get("exact_micros") {
            Some(v) => Some(as_u64(
                v.as_int().ok_or("cell payload `exact_micros` must be an integer")?,
                "exact_micros",
            )?),
            None => None,
        },
        modp_micros: as_u64(int_field("modp_micros")?, "modp_micros")?,
    })
}

/// Renders the grid as the `modp_scaling` experiment table.
pub fn scaling_table(cells: &[ModpCell]) -> Table {
    let mut t = Table::new(
        "modp_scaling",
        "Exact vs mod-p incremental rank maintenance (µs per trajectory)",
        &["family", "cell", "rows", "cols", "exact_us", "modp_us", "speedup"],
    );
    for c in cells {
        t.push_row(vec![
            c.family.to_string(),
            c.cell.clone(),
            c.rows.to_string(),
            c.cols.to_string(),
            c.exact_micros
                .map_or("(modp only)".to_string(), |e| e.to_string()),
            c.modp_micros.to_string(),
            c.speedup()
                .map_or("-".to_string(), |s| format!("{s:.1}")),
        ]);
    }
    t
}

/// The shared cell with the most matrix entries (`rows × cols`), if any.
pub fn largest_shared(cells: &[ModpCell]) -> Option<&ModpCell> {
    cells
        .iter()
        .filter(|c| c.exact_micros.is_some())
        .max_by_key(|c| c.rows * c.cols)
}

/// Acceptance gates for full runs of the grid.
///
/// * the largest shared cell must show ≥ 5× exact-over-modp speedup;
/// * at least one `n ≥ 512` cell must finish its mod-p trajectory under
///   [`EXACT_N128_BASELINE_MICROS`].
///
/// # Errors
///
/// Returns a description of the first violated gate.
pub fn check_gates(cells: &[ModpCell]) -> Result<(), String> {
    let largest = largest_shared(cells).ok_or("no shared cell in grid")?;
    let speedup = largest.speedup().expect("shared cell has both timings");
    if speedup < 5.0 {
        return Err(format!(
            "largest shared cell {} speedup {speedup:.1} < 5.0",
            largest.cell
        ));
    }
    let beats_baseline = cells
        .iter()
        .any(|c| c.rows >= 512 && c.modp_micros < EXACT_N128_BASELINE_MICROS);
    if !beats_baseline {
        return Err(format!(
            "no n >= 512 cell under the exact n=128 baseline of {EXACT_N128_BASELINE_MICROS} us"
        ));
    }
    Ok(())
}

/// Builds the `BENCH_modp.json` document for a finished grid.
///
/// # Panics
///
/// Panics if the grid has no shared cell.
pub fn bench_doc(cells: &[ModpCell]) -> Value {
    let obj = |c: &ModpCell| {
        let mut entries = vec![
            ("family".to_string(), Value::Str(c.family.to_string())),
            ("cell".to_string(), Value::Str(c.cell.clone())),
            ("rows".to_string(), Value::Int(c.rows as i128)),
            ("cols".to_string(), Value::Int(c.cols as i128)),
            ("modp_micros".to_string(), Value::Int(c.modp_micros as i128)),
        ];
        if let Some(e) = c.exact_micros {
            entries.push(("exact_micros".to_string(), Value::Int(e as i128)));
            entries.push((
                "speedup".to_string(),
                Value::Float(c.speedup().expect("shared cell")),
            ));
        }
        Value::Object(entries)
    };
    let largest = largest_shared(cells).expect("grid has a shared cell");
    Value::Object(vec![
        ("bench".to_string(), Value::Str("modp_scaling".to_string())),
        ("schema_version".to_string(), Value::Int(1)),
        (
            "exact_n128_baseline_micros".to_string(),
            Value::Int(EXACT_N128_BASELINE_MICROS as i128),
        ),
        (
            "grid".to_string(),
            Value::Array(cells.iter().map(obj).collect()),
        ),
        ("largest_shared_cell".to_string(), obj(largest)),
    ])
}

/// Looks up a key in a [`Value::Object`].
fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, String> {
    match v {
        Value::Object(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key {key:?}")),
        _ => Err(format!("expected object around {key:?}")),
    }
}

/// Schema check for the `BENCH_modp.json` document.
///
/// Runs in-process (the vendored `serde_json` has no parser): top-level
/// keys, per-cell key/variant shape, positive timings, shared cells
/// carrying consistent `exact_micros`/`speedup`, and that
/// `largest_shared_cell` really is the shared cell with the most
/// entries.
///
/// # Errors
///
/// Returns a description of the first violated schema rule.
pub fn validate_doc(doc: &Value) -> Result<(), String> {
    match field(doc, "bench")? {
        Value::Str(s) if s == "modp_scaling" => {}
        other => return Err(format!("bad bench name: {other:?}")),
    }
    match field(doc, "schema_version")? {
        Value::Int(1) => {}
        other => return Err(format!("bad schema_version: {other:?}")),
    }
    match field(doc, "exact_n128_baseline_micros")? {
        Value::Int(v) if *v == EXACT_N128_BASELINE_MICROS as i128 => {}
        other => return Err(format!("bad exact_n128_baseline_micros: {other:?}")),
    }
    // Returns (rows*cols, is_shared) for consistency checks.
    let cell_shape = |cell: &Value| -> Result<(i128, bool), String> {
        match field(cell, "family")? {
            Value::Str(s) if s == "M_r" || s == "random" => {}
            other => return Err(format!("bad family: {other:?}")),
        }
        let Value::Str(_) = field(cell, "cell")? else {
            return Err("cell label must be a string".to_string());
        };
        let mut dims = (0i128, 0i128);
        for (key, slot) in [("rows", 0), ("cols", 1), ("modp_micros", 2)] {
            match field(cell, key)? {
                Value::Int(v) if *v > 0 => {
                    if slot == 0 {
                        dims.0 = *v;
                    } else if slot == 1 {
                        dims.1 = *v;
                    }
                }
                other => return Err(format!("bad {key}: {other:?}")),
            }
        }
        let shared = field(cell, "exact_micros").is_ok();
        if shared {
            match field(cell, "exact_micros")? {
                Value::Int(v) if *v > 0 => {}
                other => return Err(format!("bad exact_micros: {other:?}")),
            }
            match field(cell, "speedup")? {
                Value::Float(f) if *f > 0.0 => {}
                other => return Err(format!("bad speedup: {other:?}")),
            }
        }
        Ok((dims.0 * dims.1, shared))
    };
    let Value::Array(grid) = field(doc, "grid")? else {
        return Err("grid must be an array".to_string());
    };
    if grid.is_empty() {
        return Err("grid must be non-empty".to_string());
    }
    let mut max_shared = 0i128;
    for cell in grid {
        let (entries, shared) = cell_shape(cell)?;
        if shared {
            max_shared = max_shared.max(entries);
        }
    }
    if max_shared == 0 {
        return Err("grid has no shared cell".to_string());
    }
    let largest = field(doc, "largest_shared_cell")?;
    let (entries, shared) = cell_shape(largest)?;
    if !shared {
        return Err("largest_shared_cell must carry exact timings".to_string());
    }
    if entries != max_shared {
        return Err(format!(
            "largest_shared_cell has {entries} entries but the shared maximum is {max_shared}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_runs_and_validates() {
        let cells = run_scaling(Grid::Smoke);
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().all(|c| c.modp_micros >= 1));
        assert!(cells.iter().all(|c| c.exact_micros.is_some()));
        let doc = bench_doc(&cells);
        validate_doc(&doc).expect("smoke doc validates");
        let table = scaling_table(&cells);
        assert_eq!(table.rows.len(), cells.len());
    }

    #[test]
    fn validation_rejects_tampered_docs() {
        let cells = run_scaling(Grid::Smoke);
        let doc = bench_doc(&cells);

        // Wrong bench name.
        let mut bad = doc.clone();
        if let Value::Object(entries) = &mut bad {
            entries[0].1 = Value::Str("other".to_string());
        }
        assert!(validate_doc(&bad).unwrap_err().contains("bench name"));

        // Empty grid.
        let mut bad = doc.clone();
        if let Value::Object(entries) = &mut bad {
            for (k, v) in entries.iter_mut() {
                if k == "grid" {
                    *v = Value::Array(Vec::new());
                }
            }
        }
        assert!(validate_doc(&bad).unwrap_err().contains("non-empty"));

        // largest_shared_cell inconsistent with the grid.
        let mut bad = doc.clone();
        if let Value::Object(entries) = &mut bad {
            for (k, v) in entries.iter_mut() {
                if k == "largest_shared_cell" {
                    if let Value::Object(cell) = v {
                        for (ck, cv) in cell.iter_mut() {
                            if ck == "rows" {
                                *cv = Value::Int(1);
                            }
                        }
                    }
                }
            }
        }
        assert!(validate_doc(&bad)
            .unwrap_err()
            .contains("largest_shared_cell"));

        // Missing baseline anchor.
        let bad = Value::Object(vec![
            ("bench".to_string(), Value::Str("modp_scaling".to_string())),
            ("schema_version".to_string(), Value::Int(1)),
        ]);
        assert!(validate_doc(&bad)
            .unwrap_err()
            .contains("exact_n128_baseline_micros"));
    }

    #[test]
    fn gates_judge_speedup_and_baseline() {
        let shared = ModpCell {
            family: "random",
            cell: "n=128,r=4".to_string(),
            rows: 128,
            cols: 81,
            exact_micros: Some(10_000),
            modp_micros: 100,
        };
        let big = ModpCell {
            family: "random",
            cell: "n=512,r=4".to_string(),
            rows: 512,
            cols: 81,
            exact_micros: None,
            modp_micros: 2_000,
        };
        check_gates(&[shared.clone(), big.clone()]).expect("both gates pass");

        let slow_shared = ModpCell {
            exact_micros: Some(300),
            ..shared.clone()
        };
        assert!(check_gates(&[slow_shared, big.clone()])
            .unwrap_err()
            .contains("speedup"));

        let slow_big = ModpCell {
            modp_micros: EXACT_N128_BASELINE_MICROS + 1,
            ..big
        };
        assert!(check_gates(&[shared, slow_big])
            .unwrap_err()
            .contains("baseline"));
    }

    #[test]
    fn random_family_trajectories_are_seeded() {
        assert_eq!(random_rows(8, 9, 3, 42), random_rows(8, 9, 3, 42));
        assert_ne!(random_rows(8, 9, 3, 42), random_rows(8, 9, 3, 43));
    }
}
