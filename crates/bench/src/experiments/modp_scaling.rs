//! Mod-p vs exact incremental kernel maintenance (`exp_modp_scaling`).
//!
//! Times the two incremental rank/nullity watchers the counting
//! algorithms can run per round:
//!
//! * **exact** — the rational [`KernelTracker`] (or its paper-system
//!   wrapper [`ObservationKernel`]), reducing each appended row with
//!   exact [`Ratio`](anonet_linalg::Ratio) arithmetic;
//! * **modp** — the [`ModpKernelTracker`] over the fixed 62-bit prime
//!   field `F_P`, `P = 2^62 − 57`, doing the same forward elimination in
//!   branch-free `u64` Montgomery arithmetic.
//!
//! Three cell families cover the `(n, r)` grid:
//!
//! * `M_r` — the paper's observation system maintained across rounds
//!   `0..=r`;
//! * `random` — seeded low-rank append trajectories of `n` rows over
//!   `3^r` columns (same construction as `exp_linalg_scaling`);
//! * `fast` — the same construction at `n` up to `10^5`, timing the
//!   delayed-reduction fused append
//!   ([`ModpKernelTracker::append_row_i64`]) against the scalar
//!   reference path ([`ModpKernelTracker::append_row_scalar_i64`]).
//!
//! Cells up to the `exp_linalg_scaling` grid boundary are **shared**:
//! both arms are timed and the mod-p rank is cross-checked (un-timed)
//! against the exact rank after every append. Larger cells
//! (`n ∈ {256, 512, 1024}`, `M_4`, `M_5`) are **mod-p only** — the
//! exact arm would dominate the run — and are instead certified against
//! structural invariants (Lemma 2's `dim ker M_r = 1` for `M_r` cells,
//! the construction rank bound for `random` cells). `fast` cells check
//! (un-timed) that the fused path and the chunk-claiming batch
//! eliminator leave the tracker byte-identical to the scalar path, and
//! record the final rank plus an FNV-1a digest of the canonical echelon
//! so thread-count determinism is visible in the document itself.
//!
//! The emitted document (`BENCH_modp.json`, schema v2, all-integer) is
//! validated in-process by [`validate_doc`]; full runs additionally
//! pass [`check_gates`]: ≥ 5× over the exact tracker at the largest
//! shared cell, at least one `n ≥ 512` cell finishing under the exact
//! tracker's committed `n = 128` time (16,704 µs in
//! `BENCH_linalg.json`), and the largest `fast` cell reaching
//! `n ≥ 10^5` rows with the fused path ≥ 3× over the scalar path.
//! [`lint_committed`] re-checks all of that on the committed file
//! through the float-free [`anonet_trace::json`] parser.

use anonet_core::experiment::Table;
use anonet_linalg::{KernelTracker, ModpKernelTracker, SolverBackend};
use anonet_multigraph::system::{self, ObservationKernel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;
use std::hint::black_box;
use std::time::Instant;

/// The exact tracker's committed `n = 128, r = 4` trajectory time from
/// `BENCH_linalg.json` — the anchor an `n ≥ 512` mod-p cell must beat.
pub const EXACT_N128_BASELINE_MICROS: u64 = 16_704;

/// Gate: the largest shared cell's exact-over-modp speedup floor,
/// in permille (5000 = 5×).
pub const SPEEDUP_FLOOR_PERMILLE: u64 = 5000;

/// Gate: the largest `fast` cell's scalar-over-fused speedup floor,
/// in permille (3000 = 3×).
pub const FAST_SPEEDUP_FLOOR_PERMILLE: u64 = 3000;

/// Gate: the row count the largest `fast` cell must reach.
pub const MIN_LARGEST_FAST_ROWS: u64 = 100_000;

/// Grid size selector for [`run_scaling`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grid {
    /// Tiny cells for schema smoke tests (sub-second even in debug).
    Smoke,
    /// Reduced grid for `--quick` runs.
    Quick,
    /// The full grid behind the committed `BENCH_modp.json`.
    Full,
}

/// One timed cell of the mod-p scaling grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModpCell {
    /// Cell family: `"M_r"`, `"random"` or `"fast"`.
    pub family: &'static str,
    /// Human-readable grid coordinates, e.g. `"n=512,r=4"`.
    pub cell: String,
    /// Rows appended over the trajectory.
    pub rows: usize,
    /// Columns of the final system.
    pub cols: usize,
    /// Wall-clock microseconds for the exact trajectory (`None` on
    /// mod-p-only and `fast` cells).
    pub exact_micros: Option<u64>,
    /// Wall-clock microseconds for the mod-p trajectory (on `fast`
    /// cells: the delayed-reduction fused append path).
    pub modp_micros: u64,
    /// Wall-clock microseconds for the scalar reference path (`fast`
    /// cells only).
    pub scalar_micros: Option<u64>,
    /// Final rank of the trajectory (`fast` cells only).
    pub rank: Option<usize>,
    /// FNV-1a digest of the final canonical echelon (`fast` cells
    /// only) — identical across append paths and thread counts.
    pub echelon_digest: Option<u64>,
}

impl ModpCell {
    /// Exact-over-modp wall-clock ratio in permille (5000 = 5×);
    /// `None` on cells without an exact arm.
    pub fn speedup_permille(&self) -> Option<u64> {
        self.exact_micros
            .map(|e| e.saturating_mul(1000) / self.modp_micros.max(1))
    }

    /// Scalar-over-fused wall-clock ratio in permille (3000 = 3×);
    /// `None` outside the `fast` family.
    pub fn fast_speedup_permille(&self) -> Option<u64> {
        self.scalar_micros
            .map(|s| s.saturating_mul(1000) / self.modp_micros.max(1))
    }
}

/// Minimum wall-clock micros of `reps` executions of `f` (at least 1).
fn time_micros(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_micros() as u64);
    }
    best.max(1)
}

/// The paper-system family: maintain `M_0 ⊂ M_1 ⊂ … ⊂ M_r` on both
/// backends (`shared = false` skips the exact arm).
fn mr_cell(r: usize, shared: bool) -> ModpCell {
    // Un-timed agreement gate. Shared cells check the mod-p nullity
    // against the exact one per round; mod-p-only cells check Lemma 2's
    // closed form (rank = rows, dim ker = 1) directly.
    let mut modp = ObservationKernel::with_backend(SolverBackend::ModpCertified);
    if shared {
        let mut exact = ObservationKernel::new();
        for level in 0..=r {
            exact.push_round().expect("push exact round");
            modp.push_round().expect("push modp round");
            assert_eq!(
                modp.nullity(),
                exact.nullity(),
                "M_{level}: mod-p nullity must match exact"
            );
        }
    } else {
        for _ in 0..=r {
            modp.push_round().expect("push modp round");
        }
    }
    assert_eq!(modp.rank(), system::row_count(r), "Lemma 2 rank at r={r}");
    assert_eq!(modp.nullity(), 1, "Lemma 2 nullity at r={r}");

    let reps = if r >= 3 { 2 } else { 5 };
    let exact_micros = shared.then(|| {
        time_micros(reps, || {
            let mut k = ObservationKernel::new();
            let mut sink = 0u64;
            for _ in 0..=r {
                k.push_round().expect("push exact round");
                sink ^= k.nullity() as u64;
            }
            black_box(sink);
        })
    });
    let modp_micros = time_micros(reps, || {
        let mut k = ObservationKernel::with_backend(SolverBackend::ModpCertified);
        let mut sink = 0u64;
        for _ in 0..=r {
            k.push_round().expect("push modp round");
            sink ^= k.nullity() as u64;
        }
        black_box(sink);
    });

    ModpCell {
        family: "M_r",
        cell: format!("r={r}"),
        rows: system::row_count(r),
        cols: system::column_count(r),
        exact_micros,
        modp_micros,
        scalar_micros: None,
        rank: None,
        echelon_digest: None,
    }
}

/// Seeded `n`-row trajectory over `cols` columns with rank ≤ `rank` —
/// the same construction as `exp_linalg_scaling`'s random family.
fn random_rows(n: usize, cols: usize, rank: usize, seed: u64) -> Vec<Vec<i64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let basis: Vec<Vec<i64>> = (0..rank)
        .map(|_| (0..cols).map(|_| rng.gen_range(-1i64..=1)).collect())
        .collect();
    (0..n)
        .map(|_| {
            let mut row = vec![0i64; cols];
            for _ in 0..3 {
                let b = rng.gen_range(0..rank);
                let c = rng.gen_range(-1i64..=1);
                for (x, y) in row.iter_mut().zip(&basis[b]) {
                    *x += c * *y;
                }
            }
            row
        })
        .collect()
}

/// The random family: append `n` seeded rows over `3^r` columns,
/// querying the rank after every append on both arms.
fn random_cell(n: usize, r: u32, rank: usize, seed: u64, shared: bool) -> ModpCell {
    let cols = 3usize.pow(r);
    let rows = random_rows(n, cols, rank, seed);

    // Un-timed agreement gate.
    let mut modp = ModpKernelTracker::new(cols);
    if shared {
        let mut exact = KernelTracker::new(cols);
        for row in &rows {
            exact.append_row_i64(row).expect("exact append");
            modp.append_row_i64(row).expect("modp append");
            assert_eq!(modp.rank(), exact.rank(), "rank mismatch at n={n}, r={r}");
            assert_eq!(modp.pivots(), exact.pivots(), "pivots at n={n}, r={r}");
        }
    } else {
        for row in &rows {
            modp.append_row_i64(row).expect("modp append");
        }
        // The construction bounds the true rank by the basis size.
        assert!(modp.rank() <= rank, "construction rank bound at n={n}");
        assert_eq!(modp.nullity(), cols - modp.rank());
    }

    let reps = if n >= 96 { 1 } else { 3 };
    let exact_micros = shared.then(|| {
        time_micros(reps, || {
            let mut t = KernelTracker::new(cols);
            let mut sink = 0u64;
            for row in &rows {
                t.append_row_i64(row).expect("exact append");
                sink ^= t.rank() as u64;
            }
            black_box(sink);
        })
    });
    let modp_micros = time_micros(reps.max(3), || {
        let mut t = ModpKernelTracker::new(cols);
        let mut sink = 0u64;
        for row in &rows {
            t.append_row_i64(row).expect("modp append");
            sink ^= t.rank() as u64;
        }
        black_box(sink);
    });

    ModpCell {
        family: "random",
        cell: format!("n={n},r={r}"),
        rows: n,
        cols,
        exact_micros,
        modp_micros,
        scalar_micros: None,
        rank: None,
        echelon_digest: None,
    }
}

/// FNV-1a digest of a tracker's canonical echelon (rank, pivots and the
/// Montgomery-reduced residues of every stored row) — the value every
/// append path and thread count must agree on byte for byte.
pub fn echelon_digest(t: &ModpKernelTracker) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mix = |h: &mut u64, x: u64| {
        *h ^= x;
        *h = h.wrapping_mul(PRIME);
    };
    mix(&mut h, t.rank() as u64);
    for &p in t.pivots() {
        mix(&mut h, p as u64);
    }
    for i in 0..t.rank() {
        for v in t.echelon_row(i) {
            mix(&mut h, v);
        }
    }
    h
}

/// The fast family: `n` seeded rows over `3^r` columns, timing the
/// delayed-reduction fused append against the scalar reference path.
/// The un-timed gate checks the fused path AND the chunk-claiming
/// batch eliminator (at `threads` workers) leave the tracker
/// byte-identical to the scalar path.
fn fast_cell(n: usize, r: u32, rank: usize, seed: u64, threads: usize) -> ModpCell {
    let cols = 3usize.pow(r);
    let rows = random_rows(n, cols, rank, seed);

    // Un-timed agreement gate.
    let mut scalar = ModpKernelTracker::new(cols);
    for row in &rows {
        scalar.append_row_scalar_i64(row).expect("scalar append");
    }
    let mut fused = ModpKernelTracker::new(cols);
    for row in &rows {
        fused.append_row_i64(row).expect("fused append");
    }
    assert_eq!(fused, scalar, "fused echelon diverged at n={n}, r={r}");
    let mut batch = ModpKernelTracker::new(cols);
    batch
        .append_rows_i64(&rows, threads)
        .expect("batch append");
    assert_eq!(
        batch, scalar,
        "batch echelon diverged at n={n}, r={r}, threads={threads}"
    );
    assert!(scalar.rank() <= rank, "construction rank bound at n={n}");
    let digest = echelon_digest(&scalar);

    let reps = if n >= 50_000 { 2 } else { 3 };
    let scalar_micros = time_micros(reps, || {
        let mut t = ModpKernelTracker::new(cols);
        let mut sink = 0u64;
        for row in &rows {
            t.append_row_scalar_i64(row).expect("scalar append");
            sink ^= t.rank() as u64;
        }
        black_box(sink);
    });
    let fast_micros = time_micros(reps, || {
        let mut t = ModpKernelTracker::new(cols);
        let mut sink = 0u64;
        for row in &rows {
            t.append_row_i64(row).expect("fused append");
            sink ^= t.rank() as u64;
        }
        black_box(sink);
    });

    ModpCell {
        family: "fast",
        cell: format!("n={n},r={r}"),
        rows: n,
        cols,
        exact_micros: None,
        modp_micros: fast_micros,
        scalar_micros: Some(scalar_micros),
        rank: Some(scalar.rank()),
        echelon_digest: Some(digest),
    }
}

/// `(n, r, rank, seed)` coordinates of one random-family cell.
type RandomSpec = (usize, u32, usize, u64);

/// Pre-run coordinates of one grid cell — computable *before* the cell
/// runs, which is what lets the checkpoint runner identify journaled
/// cells across resumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSpec {
    /// One `M_r`-family cell.
    Mr {
        /// Top round index.
        r: usize,
        /// Whether the exact arm is timed too.
        shared: bool,
    },
    /// One random-family cell.
    Random {
        /// Rows appended over the trajectory.
        n: usize,
        /// Column exponent (`3^r` columns).
        r: u32,
        /// Basis size bounding the construction rank.
        rank: usize,
        /// RNG seed of the trajectory.
        seed: u64,
        /// Whether the exact arm is timed too.
        shared: bool,
    },
    /// One fast-family cell (fused vs scalar append).
    Fast {
        /// Rows appended over the trajectory.
        n: usize,
        /// Column exponent (`3^r` columns).
        r: u32,
        /// Basis size bounding the construction rank.
        rank: usize,
        /// RNG seed of the trajectory.
        seed: u64,
        /// Worker count for the un-timed batch-eliminator check.
        threads: usize,
    },
}

impl CellSpec {
    /// Stable identifier used in checkpoint journals.
    pub fn id(&self) -> String {
        match *self {
            CellSpec::Mr { r, shared } => {
                format!("M_r:r={r}{}", if shared { "" } else { ":modp-only" })
            }
            CellSpec::Random {
                n, r, seed, shared, ..
            } => format!(
                "random:n={n},r={r},seed={seed}{}",
                if shared { "" } else { ":modp-only" }
            ),
            CellSpec::Fast { n, r, seed, .. } => format!("fast:n={n},r={r},seed={seed}"),
        }
    }

    /// Runs the cell (serially, for timing fidelity).
    ///
    /// # Panics
    ///
    /// Panics if a cross-check between the two backends (or against the
    /// structural invariants) fails — the checkpoint runner catches
    /// this into a `CellFailure`.
    pub fn run(&self) -> ModpCell {
        match *self {
            CellSpec::Mr { r, shared } => mr_cell(r, shared),
            CellSpec::Random {
                n,
                r,
                rank,
                seed,
                shared,
            } => random_cell(n, r, rank, seed, shared),
            CellSpec::Fast {
                n,
                r,
                rank,
                seed,
                threads,
            } => fast_cell(n, r, rank, seed, threads),
        }
    }
}

/// The grid's cell specs, in grid order. `threads` is the worker count
/// the fast cells use for their un-timed batch-eliminator check (the
/// timed arms are always serial).
pub fn grid_specs(grid: Grid, threads: usize) -> Vec<CellSpec> {
    // Shared specs mirror `exp_linalg_scaling`'s grid (both arms timed);
    // the extended `n ∈ {256, 512, 1024}` cells are mod-p only; the
    // fast cells push the fused append path to `n = 10^5`.
    type GridTable = (
        &'static [usize],
        &'static [usize],
        &'static [RandomSpec],
        &'static [RandomSpec],
        &'static [RandomSpec],
    );
    let (mr_shared, mr_only, shared, only, fast): GridTable = match grid {
        Grid::Smoke => (&[1], &[], &[(16, 2, 4, 101)], &[], &[(2_000, 4, 24, 303)]),
        Grid::Quick => (
            &[1, 2],
            &[4],
            &[(32, 2, 6, 101), (64, 3, 10, 202)],
            &[(256, 4, 24, 505)],
            &[(10_000, 4, 40, 808)],
        ),
        Grid::Full => (
            &[1, 2, 3],
            &[4, 5],
            &[(32, 2, 6, 101), (64, 3, 10, 202), (128, 4, 20, 404)],
            &[(256, 4, 24, 505), (512, 4, 24, 606), (1024, 4, 28, 707)],
            &[(10_000, 4, 40, 808), (100_000, 4, 40, 909)],
        ),
    };
    let mut specs: Vec<CellSpec> = mr_shared
        .iter()
        .map(|&r| CellSpec::Mr { r, shared: true })
        .collect();
    specs.extend(mr_only.iter().map(|&r| CellSpec::Mr { r, shared: false }));
    specs.extend(shared.iter().map(|&(n, r, rank, seed)| CellSpec::Random {
        n,
        r,
        rank,
        seed,
        shared: true,
    }));
    specs.extend(only.iter().map(|&(n, r, rank, seed)| CellSpec::Random {
        n,
        r,
        rank,
        seed,
        shared: false,
    }));
    specs.extend(fast.iter().map(|&(n, r, rank, seed)| CellSpec::Fast {
        n,
        r,
        rank,
        seed,
        threads,
    }));
    specs
}

/// Runs the scaling grid serially (timing fidelity) and returns its
/// cells in grid order.
pub fn run_scaling(grid: Grid) -> Vec<ModpCell> {
    grid_specs(grid, 1).iter().map(CellSpec::run).collect()
}

/// Serializes a cell as a single-line checkpoint payload.
///
/// The payload carries only strings and integers — the speedups are
/// derived permille ratios recomputed from the timings, which keeps
/// the journal parseable by [`anonet_trace::json`] (floats round-trip
/// unreliably and are rejected there).
pub fn cell_payload(cell: &ModpCell) -> String {
    let mut entries = vec![
        ("family".to_string(), Value::Str(cell.family.to_string())),
        ("cell".to_string(), Value::Str(cell.cell.clone())),
        ("rows".to_string(), Value::Int(cell.rows as i128)),
        ("cols".to_string(), Value::Int(cell.cols as i128)),
        (
            "modp_micros".to_string(),
            Value::Int(cell.modp_micros as i128),
        ),
    ];
    if let Some(e) = cell.exact_micros {
        entries.push(("exact_micros".to_string(), Value::Int(e as i128)));
    }
    if let Some(s) = cell.scalar_micros {
        entries.push(("scalar_micros".to_string(), Value::Int(s as i128)));
    }
    if let Some(r) = cell.rank {
        entries.push(("rank".to_string(), Value::Int(r as i128)));
    }
    if let Some(d) = cell.echelon_digest {
        entries.push(("echelon_digest".to_string(), Value::Int(d as i128)));
    }
    serde_json::to_string(&Value::Object(entries)).expect("cell serializes")
}

/// Rebuilds a cell from a checkpoint payload.
///
/// # Errors
///
/// Returns a description of the first missing/mistyped field or of an
/// unknown family.
pub fn cell_from_payload(payload: &anonet_trace::json::JsonValue) -> Result<ModpCell, String> {
    use anonet_trace::json::JsonValue;
    let int_field = |key: &str| -> Result<i128, String> {
        payload
            .get(key)
            .and_then(JsonValue::as_int)
            .ok_or_else(|| format!("cell payload is missing integer `{key}`"))
    };
    let family = match payload.get("family").and_then(JsonValue::as_str) {
        Some("M_r") => "M_r",
        Some("random") => "random",
        Some("fast") => "fast",
        Some(other) => return Err(format!("unknown cell family `{other}`")),
        None => return Err("cell payload is missing string `family`".to_string()),
    };
    let as_usize = |v: i128, key: &str| {
        usize::try_from(v).map_err(|_| format!("cell payload `{key}` out of range"))
    };
    let as_u64 =
        |v: i128, key: &str| u64::try_from(v).map_err(|_| format!("cell payload `{key}` out of range"));
    Ok(ModpCell {
        family,
        cell: payload
            .get("cell")
            .and_then(JsonValue::as_str)
            .ok_or("cell payload is missing string `cell`")?
            .to_string(),
        rows: as_usize(int_field("rows")?, "rows")?,
        cols: as_usize(int_field("cols")?, "cols")?,
        exact_micros: match payload.get("exact_micros") {
            Some(v) => Some(as_u64(
                v.as_int().ok_or("cell payload `exact_micros` must be an integer")?,
                "exact_micros",
            )?),
            None => None,
        },
        modp_micros: as_u64(int_field("modp_micros")?, "modp_micros")?,
        scalar_micros: match payload.get("scalar_micros") {
            Some(v) => Some(as_u64(
                v.as_int().ok_or("cell payload `scalar_micros` must be an integer")?,
                "scalar_micros",
            )?),
            None => None,
        },
        rank: match payload.get("rank") {
            Some(v) => Some(as_usize(
                v.as_int().ok_or("cell payload `rank` must be an integer")?,
                "rank",
            )?),
            None => None,
        },
        echelon_digest: match payload.get("echelon_digest") {
            Some(v) => Some(as_u64(
                v.as_int().ok_or("cell payload `echelon_digest` must be an integer")?,
                "echelon_digest",
            )?),
            None => None,
        },
    })
}

/// Renders a permille ratio as `12.3x`.
fn permille_display(permille: u64) -> String {
    format!("{}.{}x", permille / 1000, permille % 1000 / 100)
}

/// Renders the grid as the `modp_scaling` experiment table.
pub fn scaling_table(cells: &[ModpCell]) -> Table {
    let mut t = Table::new(
        "modp_scaling",
        "Exact vs mod-p incremental rank maintenance (µs per trajectory)",
        &[
            "family", "cell", "rows", "cols", "exact_us", "scalar_us", "modp_us", "speedup",
        ],
    );
    for c in cells {
        let speedup = c
            .speedup_permille()
            .or_else(|| c.fast_speedup_permille())
            .map_or("-".to_string(), permille_display);
        t.push_row(vec![
            c.family.to_string(),
            c.cell.clone(),
            c.rows.to_string(),
            c.cols.to_string(),
            c.exact_micros.map_or("-".to_string(), |e| e.to_string()),
            c.scalar_micros.map_or("-".to_string(), |s| s.to_string()),
            c.modp_micros.to_string(),
            speedup,
        ]);
    }
    t
}

/// The shared cell with the most matrix entries (`rows × cols`), if any.
pub fn largest_shared(cells: &[ModpCell]) -> Option<&ModpCell> {
    cells
        .iter()
        .filter(|c| c.exact_micros.is_some())
        .max_by_key(|c| c.rows * c.cols)
}

/// The fast cell with the most rows, if any.
pub fn largest_fast(cells: &[ModpCell]) -> Option<&ModpCell> {
    cells
        .iter()
        .filter(|c| c.scalar_micros.is_some())
        .max_by_key(|c| c.rows)
}

/// Acceptance gates for full runs of the grid.
///
/// * the largest shared cell must show ≥ [`SPEEDUP_FLOOR_PERMILLE`]
///   exact-over-modp speedup;
/// * at least one `n ≥ 512` cell must finish its mod-p trajectory under
///   [`EXACT_N128_BASELINE_MICROS`];
/// * the largest fast cell must reach [`MIN_LARGEST_FAST_ROWS`] rows
///   with ≥ [`FAST_SPEEDUP_FLOOR_PERMILLE`] scalar-over-fused speedup.
///
/// # Errors
///
/// Returns a description of the first violated gate.
pub fn check_gates(cells: &[ModpCell]) -> Result<(), String> {
    let largest = largest_shared(cells).ok_or("no shared cell in grid")?;
    let speedup = largest
        .speedup_permille()
        .expect("shared cell has both timings");
    if speedup < SPEEDUP_FLOOR_PERMILLE {
        return Err(format!(
            "largest shared cell {} speedup {speedup} permille < {SPEEDUP_FLOOR_PERMILLE}",
            largest.cell
        ));
    }
    let beats_baseline = cells
        .iter()
        .any(|c| c.rows >= 512 && c.modp_micros < EXACT_N128_BASELINE_MICROS);
    if !beats_baseline {
        return Err(format!(
            "no n >= 512 cell under the exact n=128 baseline of {EXACT_N128_BASELINE_MICROS} us"
        ));
    }
    let fast = largest_fast(cells).ok_or("no fast cell in grid")?;
    if (fast.rows as u64) < MIN_LARGEST_FAST_ROWS {
        return Err(format!(
            "largest fast cell tops out at {} rows, below the {MIN_LARGEST_FAST_ROWS} target",
            fast.rows
        ));
    }
    let fast_speedup = fast
        .fast_speedup_permille()
        .expect("fast cell has both timings");
    if fast_speedup < FAST_SPEEDUP_FLOOR_PERMILLE {
        return Err(format!(
            "largest fast cell {} speedup {fast_speedup} permille < {FAST_SPEEDUP_FLOOR_PERMILLE}",
            fast.cell
        ));
    }
    Ok(())
}

/// Builds the `BENCH_modp.json` document (schema v2, all-integer) for
/// a finished grid. With `timings = false` every wall-clock field (and
/// the timing-derived `largest_shared_cell`) is omitted, leaving only
/// the deterministic facts — rows, cols, rank, echelon digest — so two
/// runs at different thread counts emit byte-identical documents.
///
/// # Panics
///
/// Panics if `timings` is set and the grid has no shared cell.
pub fn bench_doc(cells: &[ModpCell], timings: bool) -> Value {
    let obj = |c: &ModpCell| {
        let mut entries = vec![
            ("family".to_string(), Value::Str(c.family.to_string())),
            ("cell".to_string(), Value::Str(c.cell.clone())),
            ("rows".to_string(), Value::Int(c.rows as i128)),
            ("cols".to_string(), Value::Int(c.cols as i128)),
        ];
        if timings {
            entries.push(("modp_micros".to_string(), Value::Int(c.modp_micros as i128)));
            if let Some(e) = c.exact_micros {
                entries.push(("exact_micros".to_string(), Value::Int(e as i128)));
                entries.push((
                    "speedup_permille".to_string(),
                    Value::Int(c.speedup_permille().expect("shared cell") as i128),
                ));
            }
            if let Some(s) = c.scalar_micros {
                entries.push(("scalar_micros".to_string(), Value::Int(s as i128)));
                entries.push((
                    "fast_speedup_permille".to_string(),
                    Value::Int(c.fast_speedup_permille().expect("fast cell") as i128),
                ));
            }
        }
        if let Some(r) = c.rank {
            entries.push(("rank".to_string(), Value::Int(r as i128)));
        }
        if let Some(d) = c.echelon_digest {
            entries.push(("echelon_digest".to_string(), Value::Int(d as i128)));
        }
        Value::Object(entries)
    };
    let mut entries = vec![
        ("bench".to_string(), Value::Str("modp_scaling".to_string())),
        ("schema_version".to_string(), Value::Int(2)),
        (
            "exact_n128_baseline_micros".to_string(),
            Value::Int(EXACT_N128_BASELINE_MICROS as i128),
        ),
        (
            "grid".to_string(),
            Value::Array(cells.iter().map(obj).collect()),
        ),
    ];
    if timings {
        let largest = largest_shared(cells).expect("grid has a shared cell");
        entries.push(("largest_shared_cell".to_string(), obj(largest)));
    }
    Value::Object(entries)
}

/// Looks up a key in a [`Value::Object`].
fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, String> {
    match v {
        Value::Object(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key {key:?}")),
        _ => Err(format!("expected object around {key:?}")),
    }
}

/// Schema check for the `BENCH_modp.json` document (schema v2).
///
/// Runs in-process (the vendored `serde_json` has no parser): top-level
/// keys, per-cell key/variant shape, positive all-integer timings,
/// shared cells carrying consistent `exact_micros`/`speedup_permille`,
/// fast cells carrying `scalar_micros`/`fast_speedup_permille`/`rank`/
/// `echelon_digest`, and that `largest_shared_cell` (required exactly
/// when the document carries timings) really is the shared cell with
/// the most entries.
///
/// # Errors
///
/// Returns a description of the first violated schema rule.
pub fn validate_doc(doc: &Value) -> Result<(), String> {
    match field(doc, "bench")? {
        Value::Str(s) if s == "modp_scaling" => {}
        other => return Err(format!("bad bench name: {other:?}")),
    }
    match field(doc, "schema_version")? {
        Value::Int(2) => {}
        other => return Err(format!("bad schema_version: {other:?}")),
    }
    match field(doc, "exact_n128_baseline_micros")? {
        Value::Int(v) if *v == EXACT_N128_BASELINE_MICROS as i128 => {}
        other => return Err(format!("bad exact_n128_baseline_micros: {other:?}")),
    }
    // Returns (rows*cols, is_shared, is_timed) for consistency checks.
    let cell_shape = |cell: &Value| -> Result<(i128, bool, bool), String> {
        let family = match field(cell, "family")? {
            Value::Str(s) if s == "M_r" || s == "random" || s == "fast" => s.clone(),
            other => return Err(format!("bad family: {other:?}")),
        };
        let Value::Str(_) = field(cell, "cell")? else {
            return Err("cell label must be a string".to_string());
        };
        let positive = |key: &str| -> Result<i128, String> {
            match field(cell, key)? {
                Value::Int(v) if *v > 0 => Ok(*v),
                other => Err(format!("bad {key}: {other:?}")),
            }
        };
        let rows = positive("rows")?;
        let cols = positive("cols")?;
        let timed = field(cell, "modp_micros").is_ok();
        if timed {
            positive("modp_micros")?;
        }
        let shared = field(cell, "exact_micros").is_ok();
        if shared {
            positive("exact_micros")?;
            positive("speedup_permille")?;
        }
        if family == "fast" {
            positive("rank")?;
            match field(cell, "echelon_digest")? {
                Value::Int(v) if *v >= 0 => {}
                other => return Err(format!("bad echelon_digest: {other:?}")),
            }
            if timed {
                positive("scalar_micros")?;
                positive("fast_speedup_permille")?;
            }
        } else if field(cell, "scalar_micros").is_ok() {
            return Err(format!("family {family} must not carry scalar_micros"));
        }
        if shared && !timed {
            return Err("shared cell carries exact timings but no modp_micros".to_string());
        }
        Ok((rows * cols, shared, timed))
    };
    let Value::Array(grid) = field(doc, "grid")? else {
        return Err("grid must be an array".to_string());
    };
    if grid.is_empty() {
        return Err("grid must be non-empty".to_string());
    }
    let mut max_shared = 0i128;
    let mut timed_doc = None;
    for cell in grid {
        let (entries, shared, timed) = cell_shape(cell)?;
        if *timed_doc.get_or_insert(timed) != timed {
            return Err("grid mixes timed and timing-free cells".to_string());
        }
        if shared {
            max_shared = max_shared.max(entries);
        }
    }
    if timed_doc != Some(true) {
        if field(doc, "largest_shared_cell").is_ok() {
            return Err("timing-free docs must omit largest_shared_cell".to_string());
        }
        return Ok(());
    }
    if max_shared == 0 {
        return Err("grid has no shared cell".to_string());
    }
    let largest = field(doc, "largest_shared_cell")?;
    let (entries, shared, _) = cell_shape(largest)?;
    if !shared {
        return Err("largest_shared_cell must carry exact timings".to_string());
    }
    if entries != max_shared {
        return Err(format!(
            "largest_shared_cell has {entries} entries but the shared maximum is {max_shared}"
        ));
    }
    Ok(())
}

/// Gates a *committed* `BENCH_modp.json`, re-parsed through the
/// vendored [`anonet_trace::json`] reader (the `--lint-bench` CI
/// check): full schema including timings, the
/// [`SPEEDUP_FLOOR_PERMILLE`] floor at the best shared cell, the
/// `n ≥ 512` cell under [`EXACT_N128_BASELINE_MICROS`], and the
/// largest fast cell reaching [`MIN_LARGEST_FAST_ROWS`] rows at
/// ≥ [`FAST_SPEEDUP_FLOOR_PERMILLE`].
///
/// # Errors
///
/// Returns a description of the first violated rule.
pub fn lint_committed(doc: &anonet_trace::json::JsonValue) -> Result<(), String> {
    use anonet_trace::json::JsonValue;
    let str_field = |v: &JsonValue, key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string `{key}`"))
    };
    let int_field = |v: &JsonValue, key: &str| -> Result<i128, String> {
        v.get(key)
            .and_then(JsonValue::as_int)
            .ok_or_else(|| format!("missing integer `{key}`"))
    };
    if str_field(doc, "bench")? != "modp_scaling" {
        return Err("bad bench name".to_string());
    }
    if int_field(doc, "schema_version")? != 2 {
        return Err("bad schema_version".to_string());
    }
    if int_field(doc, "exact_n128_baseline_micros")? != EXACT_N128_BASELINE_MICROS as i128 {
        return Err(format!(
            "committed baseline differs from the compiled {EXACT_N128_BASELINE_MICROS} us"
        ));
    }
    let grid = doc
        .get("grid")
        .and_then(JsonValue::as_array)
        .ok_or("missing array `grid`")?;
    if grid.is_empty() {
        return Err("grid must be non-empty".to_string());
    }
    let mut best_shared: Option<i128> = None;
    let mut under_baseline = false;
    let mut best_fast: Option<(i128, i128)> = None; // (rows, permille)
    for cell in grid {
        let label = str_field(cell, "cell")?;
        let rows = int_field(cell, "rows")?;
        for key in ["cols", "modp_micros"] {
            if int_field(cell, key)? <= 0 {
                return Err(format!("cell {label}: {key} must be positive"));
            }
        }
        let modp = int_field(cell, "modp_micros")?;
        if rows >= 512 && modp < EXACT_N128_BASELINE_MICROS as i128 {
            under_baseline = true;
        }
        if cell.get("exact_micros").is_some() {
            let permille = int_field(cell, "speedup_permille")?;
            if best_shared.is_none_or(|b| permille > b) {
                best_shared = Some(permille);
            }
        }
        if str_field(cell, "family")? == "fast" {
            let permille = int_field(cell, "fast_speedup_permille")?;
            if int_field(cell, "scalar_micros")? <= 0 || int_field(cell, "rank")? <= 0 {
                return Err(format!("cell {label}: bad fast-cell fields"));
            }
            int_field(cell, "echelon_digest")?;
            if best_fast.is_none_or(|(br, _)| rows > br) {
                best_fast = Some((rows, permille));
            }
        }
    }
    let best = best_shared.ok_or("no shared cell in committed grid")?;
    if best < SPEEDUP_FLOOR_PERMILLE as i128 {
        return Err(format!(
            "best shared cell speedup {best} permille < {SPEEDUP_FLOOR_PERMILLE}"
        ));
    }
    if !under_baseline {
        return Err(format!(
            "no n >= 512 cell under the exact n=128 baseline of {EXACT_N128_BASELINE_MICROS} us"
        ));
    }
    let (rows, permille) = best_fast.ok_or("no fast cell in committed grid")?;
    if rows < MIN_LARGEST_FAST_ROWS as i128 {
        return Err(format!(
            "committed fast cells top out at {rows} rows, below the {MIN_LARGEST_FAST_ROWS} target"
        ));
    }
    if permille < FAST_SPEEDUP_FLOOR_PERMILLE as i128 {
        return Err(format!(
            "largest fast cell speedup {permille} permille < {FAST_SPEEDUP_FLOOR_PERMILLE}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_runs_and_validates() {
        let cells = run_scaling(Grid::Smoke);
        assert_eq!(cells.len(), 3);
        assert!(cells.iter().all(|c| c.modp_micros >= 1));
        let fast = largest_fast(&cells).expect("smoke grid has a fast cell");
        assert_eq!(fast.rows, 2_000);
        assert!(fast.rank.is_some() && fast.echelon_digest.is_some());
        let doc = bench_doc(&cells, true);
        validate_doc(&doc).expect("smoke doc validates");
        let table = scaling_table(&cells);
        assert_eq!(table.rows.len(), cells.len());

        // The timing-free form validates too and is deterministic: it
        // carries no wall-clock field at all.
        let doc = bench_doc(&cells, false);
        validate_doc(&doc).expect("timing-free doc validates");
        let text = serde_json::to_string(&doc).expect("doc serializes");
        for key in ["modp_micros", "exact_micros", "scalar_micros", "permille"] {
            assert!(!text.contains(key), "timing-free doc leaks {key}");
        }
        assert!(text.contains("echelon_digest"));
    }

    #[test]
    fn fast_cell_payload_roundtrips() {
        let cell = ModpCell {
            family: "fast",
            cell: "n=100000,r=4".to_string(),
            rows: 100_000,
            cols: 81,
            exact_micros: None,
            modp_micros: 1_000,
            scalar_micros: Some(3_700),
            rank: Some(40),
            echelon_digest: Some(u64::MAX - 1),
        };
        let payload = cell_payload(&cell);
        let parsed = anonet_trace::json::JsonValue::parse(&payload).expect("payload parses");
        assert_eq!(cell_from_payload(&parsed).expect("payload rebuilds"), cell);
        assert_eq!(cell.fast_speedup_permille(), Some(3_700));
    }

    #[test]
    fn lint_accepts_gated_docs_and_rejects_shortfalls() {
        let shared = ModpCell {
            family: "random",
            cell: "n=128,r=4".to_string(),
            rows: 128,
            cols: 81,
            exact_micros: Some(10_000),
            modp_micros: 100,
            scalar_micros: None,
            rank: None,
            echelon_digest: None,
        };
        let big = ModpCell {
            family: "random",
            cell: "n=512,r=4".to_string(),
            rows: 512,
            cols: 81,
            exact_micros: None,
            modp_micros: 2_000,
            scalar_micros: None,
            rank: None,
            echelon_digest: None,
        };
        let fast = ModpCell {
            family: "fast",
            cell: "n=100000,r=4".to_string(),
            rows: 100_000,
            cols: 81,
            exact_micros: None,
            modp_micros: 1_000,
            scalar_micros: Some(3_700),
            rank: Some(40),
            echelon_digest: Some(7),
        };
        let lint = |cells: &[ModpCell]| -> Result<(), String> {
            let text =
                serde_json::to_string(&bench_doc(cells, true)).expect("doc serializes");
            let doc = anonet_trace::json::JsonValue::parse(&text).expect("doc re-parses");
            lint_committed(&doc)
        };
        lint(&[shared.clone(), big.clone(), fast.clone()]).expect("gated doc lints");

        let slow_fast = ModpCell {
            scalar_micros: Some(2_000),
            ..fast.clone()
        };
        assert!(lint(&[shared.clone(), big.clone(), slow_fast])
            .unwrap_err()
            .contains("fast cell speedup"));

        let small_fast = ModpCell {
            rows: 50_000,
            ..fast.clone()
        };
        assert!(lint(&[shared.clone(), big.clone(), small_fast])
            .unwrap_err()
            .contains("top out"));

        assert!(lint(&[shared, big])
            .unwrap_err()
            .contains("no fast cell"));
    }

    #[test]
    fn echelon_digest_is_stable_and_path_independent() {
        let rows = random_rows(48, 27, 8, 1234);
        let mut a = ModpKernelTracker::new(27);
        let mut b = ModpKernelTracker::new(27);
        for row in &rows {
            a.append_row_i64(row).unwrap();
            b.append_row_scalar_i64(row).unwrap();
        }
        let mut c = ModpKernelTracker::new(27);
        c.append_rows_i64(&rows, 3).unwrap();
        assert_eq!(echelon_digest(&a), echelon_digest(&b));
        assert_eq!(echelon_digest(&a), echelon_digest(&c));
        let mut d = ModpKernelTracker::new(27);
        for row in &random_rows(48, 27, 8, 4321) {
            d.append_row_i64(row).unwrap();
        }
        assert_ne!(echelon_digest(&a), echelon_digest(&d), "digest sees content");
    }

    #[test]
    fn validation_rejects_tampered_docs() {
        let cells = run_scaling(Grid::Smoke);
        let doc = bench_doc(&cells, true);

        // Wrong bench name.
        let mut bad = doc.clone();
        if let Value::Object(entries) = &mut bad {
            entries[0].1 = Value::Str("other".to_string());
        }
        assert!(validate_doc(&bad).unwrap_err().contains("bench name"));

        // Empty grid.
        let mut bad = doc.clone();
        if let Value::Object(entries) = &mut bad {
            for (k, v) in entries.iter_mut() {
                if k == "grid" {
                    *v = Value::Array(Vec::new());
                }
            }
        }
        assert!(validate_doc(&bad).unwrap_err().contains("non-empty"));

        // largest_shared_cell inconsistent with the grid.
        let mut bad = doc.clone();
        if let Value::Object(entries) = &mut bad {
            for (k, v) in entries.iter_mut() {
                if k == "largest_shared_cell" {
                    if let Value::Object(cell) = v {
                        for (ck, cv) in cell.iter_mut() {
                            if ck == "rows" {
                                *cv = Value::Int(1);
                            }
                        }
                    }
                }
            }
        }
        assert!(validate_doc(&bad)
            .unwrap_err()
            .contains("largest_shared_cell"));

        // Missing baseline anchor.
        let bad = Value::Object(vec![
            ("bench".to_string(), Value::Str("modp_scaling".to_string())),
            ("schema_version".to_string(), Value::Int(2)),
        ]);
        assert!(validate_doc(&bad)
            .unwrap_err()
            .contains("exact_n128_baseline_micros"));
    }

    #[test]
    fn gates_judge_speedup_baseline_and_fast_floor() {
        let shared = ModpCell {
            family: "random",
            cell: "n=128,r=4".to_string(),
            rows: 128,
            cols: 81,
            exact_micros: Some(10_000),
            modp_micros: 100,
            scalar_micros: None,
            rank: None,
            echelon_digest: None,
        };
        let big = ModpCell {
            family: "random",
            cell: "n=512,r=4".to_string(),
            rows: 512,
            cols: 81,
            exact_micros: None,
            modp_micros: 2_000,
            scalar_micros: None,
            rank: None,
            echelon_digest: None,
        };
        let fast = ModpCell {
            family: "fast",
            cell: "n=100000,r=4".to_string(),
            rows: 100_000,
            cols: 81,
            exact_micros: None,
            modp_micros: 1_000,
            scalar_micros: Some(3_700),
            rank: Some(40),
            echelon_digest: Some(7),
        };
        check_gates(&[shared.clone(), big.clone(), fast.clone()]).expect("all gates pass");

        let slow_shared = ModpCell {
            exact_micros: Some(300),
            ..shared.clone()
        };
        assert!(check_gates(&[slow_shared, big.clone(), fast.clone()])
            .unwrap_err()
            .contains("speedup"));

        let slow_big = ModpCell {
            modp_micros: EXACT_N128_BASELINE_MICROS + 1,
            ..big.clone()
        };
        // The fast cell would satisfy the n >= 512 baseline gate itself,
        // so slow it past the anchor too (its scalar arm keeps the fast
        // floor satisfied so the baseline gate is the one that trips).
        let slow_anchor_fast = ModpCell {
            modp_micros: EXACT_N128_BASELINE_MICROS + 1,
            scalar_micros: Some((EXACT_N128_BASELINE_MICROS + 1) * 4),
            ..fast.clone()
        };
        assert!(check_gates(&[shared.clone(), slow_big, slow_anchor_fast])
            .unwrap_err()
            .contains("baseline"));

        let slow_fast = ModpCell {
            modp_micros: 2_000,
            ..fast.clone()
        };
        assert!(check_gates(&[shared.clone(), big.clone(), slow_fast])
            .unwrap_err()
            .contains("fast cell"));

        assert!(check_gates(&[shared, big])
            .unwrap_err()
            .contains("no fast cell"));
    }

    #[test]
    fn random_family_trajectories_are_seeded() {
        assert_eq!(random_rows(8, 9, 3, 42), random_rows(8, 9, 3, 42));
        assert_ne!(random_rows(8, 9, 3, 42), random_rows(8, 9, 3, 43));
    }
}
