//! Figures 1–4: the paper's worked examples, regenerated.

use anonet_core::experiment::Table;
use anonet_graph::{metrics, pd, DynamicNetwork};
use anonet_multigraph::adversary::TwinBuilder;
use anonet_multigraph::{transform, Census, DblMultigraph, LabelSet, LeaderState};

/// E1 (Figure 1): the example `G(PD)_2` network — persistent distances,
/// the flood from `v0` reaching `v3` at round 3, and `D = 4`.
pub fn fig1() -> Table {
    let mut t = Table::new(
        "E1 (Figure 1)",
        "G(PD)_2 example: flood from v0 at round 0; dynamic diameter D = 4",
        &["node", "persistent distance", "received flood at round"],
    );
    let mut net = pd::figure1();
    let (_, v0, _) = pd::figure1_nodes();
    let dists = metrics::persistent_distances(&mut net, 6).expect("figure 1 is PD");
    let flood = metrics::flood(&mut net, v0, 0, 16);
    #[allow(clippy::needless_range_loop)] // index used in error paths/labels
    for v in 0..net.order() {
        let name = match v {
            0 => "v_l (leader)".to_string(),
            1 | 2 => format!("relay {v} (V1)"),
            _ => format!("leaf {v} (V2)"),
        };
        let received = flood
            .received_round(v)
            .map_or("-".to_string(), |r| r.to_string());
        t.push_row(vec![name, dists[v].to_string(), received]);
    }
    t.push_row(vec![
        "dynamic diameter D".into(),
        "-".into(),
        metrics::dynamic_diameter(&mut net, 4, 16)
            .expect("figure 1 floods complete")
            .to_string(),
    ]);
    t
}

/// E2 (Figure 2): the `M(DBL_3) → G(PD)_2` transformation at one round —
/// multigraph label sets against induced relay edges.
pub fn fig2() -> Table {
    let l = |labels: &[u8]| LabelSet::from_labels(labels, 3).expect("valid labels");
    let m = DblMultigraph::new(
        3,
        vec![
            vec![l(&[1, 2, 3]), l(&[1]), l(&[2, 3]), l(&[2])],
            vec![l(&[1, 2]), l(&[3]), l(&[1]), l(&[2, 3])],
        ],
    )
    .expect("figure 2 multigraph is valid");
    let layout = transform::layout_for(&m);
    let mut net = transform::to_pd2(&m, 2).expect("transformation succeeds");

    let mut t = Table::new(
        "E2 (Figure 2)",
        "M(DBL_3) -> G(PD)_2: multigraph labels vs induced relay edges",
        &[
            "round",
            "node w in W",
            "edge labels L(w,r)",
            "G(PD)_2 relay edges",
        ],
    );
    for r in 0..2u32 {
        let g = net.graph(r);
        for (i, set) in m.round(r as usize).iter().enumerate() {
            let relays: Vec<String> = (0..layout.relays)
                .filter(|&j| g.has_edge(layout.relay(j), layout.leaf(i)))
                .map(|j| format!("relay{}", j + 1))
                .collect();
            t.push_row(vec![
                r.to_string(),
                format!("w{i}"),
                set.to_string(),
                relays.join(","),
            ]);
        }
    }
    let pd_ok = metrics::is_pd_h(&mut net, 2, 6);
    t.push_row(vec![
        "-".into(),
        "PD_2 check".into(),
        "-".into(),
        if pd_ok {
            "all distances persistent, max 2"
        } else {
            "FAILED"
        }
        .into(),
    ]);
    t
}

/// E3 (Figure 3): sizes 2 and 4 indistinguishable at round 0
/// (`s_0 = [0,0,2]`, `s'_0 = s_0 + 2k_0 = [2,2,0]`).
pub fn fig3() -> Table {
    let s = Census::from_counts(vec![0, 0, 2]).expect("valid census");
    let sp = Census::from_counts(vec![2, 2, 0]).expect("valid census");
    let m = s.realize().expect("realizable");
    let mp = sp.realize().expect("realizable");

    let mut t = Table::new(
        "E3 (Figure 3)",
        "round-0 indistinguishability: s_0 and s'_0 = s_0 + 2 k_0",
        &[
            "multigraph",
            "census [|{1}|,|{2}|,|{1,2}|]",
            "|W|",
            "leader state round 0",
        ],
    );
    let describe = |m: &DblMultigraph| {
        let st = LeaderState::observe(m, 1);
        let h = anonet_multigraph::History::empty();
        format!(
            "(1,[⊥])x{}, (2,[⊥])x{}",
            st.count(0, 1, &h),
            st.count(0, 2, &h)
        )
    };
    t.push_row(vec!["M".into(), "[0,0,2]".into(), "2".into(), describe(&m)]);
    t.push_row(vec![
        "M'".into(),
        "[2,2,0]".into(),
        "4".into(),
        describe(&mp),
    ]);
    let equal = LeaderState::observe(&m, 1) == LeaderState::observe(&mp, 1);
    t.push_row(vec![
        "equal?".into(),
        "-".into(),
        "-".into(),
        if equal {
            "yes — leader cannot count at round 0"
        } else {
            "NO"
        }
        .into(),
    ]);
    t
}

/// E4 (Figure 4): sizes 4 and 5 indistinguishable at round 1
/// (`s_1` and `s_1 + k_1`).
pub fn fig4() -> Table {
    let pair = TwinBuilder::new().build(4).expect("n = 4 twins");
    let mut t = Table::new(
        "E4 (Figure 4)",
        "round-1 indistinguishability: s_1 and s_1 + k_1 (n = 4 vs 5)",
        &["multigraph", "census (depth 2)", "|W|", "leader states"],
    );
    let c = Census::of_multigraph(&pair.smaller, 2);
    let cp = Census::of_multigraph(&pair.larger, 2);
    t.push_row(vec![
        "M".into(),
        format!("{:?}", c.counts()),
        pair.smaller.nodes().to_string(),
        "-".into(),
    ]);
    t.push_row(vec![
        "M'".into(),
        format!("{:?}", cp.counts()),
        pair.larger.nodes().to_string(),
        "-".into(),
    ]);
    for rounds in 1..=3usize {
        let eq = LeaderState::observe(&pair.smaller, rounds)
            == LeaderState::observe(&pair.larger, rounds);
        t.push_row(vec![
            format!("after round {}", rounds - 1),
            "-".into(),
            "-".into(),
            if eq {
                "identical".into()
            } else {
                "different — twins separated".to_string()
            },
        ]);
    }
    t
}
