//! Regenerates the degree-bounded mass-drain baseline \[15\]/\[12\].
//!
//! Usage: `cargo run -p anonet-bench --bin exp_massdrain [--json]`

fn main() {
    anonet_bench::emit(&[anonet_bench::experiments::mass_drain()]);
}
