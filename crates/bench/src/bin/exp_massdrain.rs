//! Regenerates the degree-bounded mass-drain baseline \[15\]/\[12\].
//!
//! Usage: `cargo run -p anonet-bench --bin exp_massdrain [--json] [--csv] [--threads N]`

use anonet_bench::experiments::runner::Cell;

fn main() {
    anonet_bench::run_and_emit(&[Cell::new("massdrain", anonet_bench::experiments::mass_drain)]);
}
