//! Batch-vs-incremental kernel maintenance trajectory
//! (`BENCH_linalg.json`).
//!
//! Flags:
//!
//! * `--quick` — reduced grid; `--smoke` — tiny grid, schema check only
//!   (writes no file unless `--out` is given);
//! * `--json` — print the benchmark document instead of the markdown
//!   table;
//! * `--out PATH` — write the document to `PATH` (default
//!   `BENCH_linalg.json` for non-smoke runs).
//!
//! The document is always schema-validated in-process before anything
//! is written: the vendored `serde_json` stand-in has no parser, so the
//! check runs on the [`serde::Value`] tree itself.

use anonet_bench::experiments::linalg_scaling::{
    bench_doc, run_scaling, scaling_table, validate_doc, Grid,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let grid = if has("--smoke") {
        Grid::Smoke
    } else if has("--quick") {
        Grid::Quick
    } else {
        Grid::Full
    };
    let out_flag = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let cells = run_scaling(grid);
    let doc = bench_doc(&cells);
    if let Err(e) = validate_doc(&doc) {
        eprintln!("error: BENCH_linalg schema check failed: {e}");
        std::process::exit(1);
    }

    let pretty = serde_json::to_string_pretty(&doc).expect("document serializes");
    if has("--json") {
        println!("{pretty}");
    } else {
        println!("{}", scaling_table(&cells));
    }

    let path = match (grid, out_flag) {
        (Grid::Smoke, None) => None, // smoke validates only
        (_, Some(p)) => Some(p),
        (_, None) => Some("BENCH_linalg.json".to_string()),
    };
    match path {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, format!("{pretty}\n")) {
                eprintln!("error: cannot write {p}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {p} ({} cells, schema ok)", cells.len());
        }
        None => eprintln!("BENCH_linalg schema ok ({} cells, nothing written)", cells.len()),
    }
}
