//! Regenerates the general-`k` extension experiments: kernel dimension
//! of `M_r^{(k)}` (E15) and ambiguity width after round 0 (E15b).
//!
//! Usage: `cargo run -p anonet-bench --bin exp_general_k [--json] [--csv] [--threads N] [--checkpoint PATH [--resume]]`
//!
//! Crash-safe flags (checkpoint/resume, fault injection) are shared by
//! every experiment binary — see `docs/RUNNER.md`.

use anonet_bench::experiments::runner::Cell;

fn main() {
    anonet_bench::run_and_emit(&[
        Cell::new("general_k", anonet_bench::experiments::general_k),
        Cell::new(
            "general_k_ambiguity",
            anonet_bench::experiments::general_k_ambiguity,
        ),
    ]);
}
