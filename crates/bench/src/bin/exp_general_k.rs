//! Regenerates the extension experiment `general_k`.
//!
//! Usage: `cargo run -p anonet-bench --bin exp_general_k [--json]`

fn main() {
    anonet_bench::emit(&[anonet_bench::experiments::general_k()]);
}
