//! Regenerates the paper's Figure 3 (round-0 indistinguishable twins).
//!
//! Usage: `cargo run -p anonet-bench --bin exp_fig3 [--json] [--csv] [--threads N] [--checkpoint PATH [--resume]]`
//!
//! Crash-safe flags (checkpoint/resume, fault injection) are shared by
//! every experiment binary — see `docs/RUNNER.md`.

use anonet_bench::experiments::runner::Cell;

fn main() {
    anonet_bench::run_and_emit(&[Cell::new("fig3", anonet_bench::experiments::fig3)]);
}
