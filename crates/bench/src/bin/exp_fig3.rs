//! Regenerates the paper's Figure 3 (round-0 indistinguishable twins).
//!
//! Usage: `cargo run -p anonet-bench --bin exp_fig3 [--json]`

fn main() {
    anonet_bench::emit(&[anonet_bench::experiments::fig3()]);
}
