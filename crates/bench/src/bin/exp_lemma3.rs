//! Regenerates Lemma 3 (closed-form kernel of M_r).
//!
//! Usage: `cargo run -p anonet-bench --bin exp_lemma3 [--json]`

fn main() {
    anonet_bench::emit(&[anonet_bench::experiments::lemma3(11)]);
}
