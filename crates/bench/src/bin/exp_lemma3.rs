//! Regenerates Lemma 3 (closed-form kernel of M_r).
//!
//! Usage: `cargo run -p anonet-bench --bin exp_lemma3 [--json] [--csv] [--threads N] [--checkpoint PATH [--resume]]`
//!
//! Crash-safe flags (checkpoint/resume, fault injection) are shared by
//! every experiment binary — see `docs/RUNNER.md`.

use anonet_bench::experiments::runner::Cell;

fn main() {
    anonet_bench::run_and_emit(&[Cell::new("lemma3", || anonet_bench::experiments::lemma3(11))]);
}
