//! Kernel vs history-tree vs degree-oracle crossover grid
//! (`BENCH_crossover.json`).
//!
//! Flags:
//!
//! * `--quick` — reduced grid; `--smoke` — the CI grid (one clean and
//!   one fault cell at `n = 40`; writes no file unless `--out` is
//!   given);
//! * `--threads N` — accepted for CI symmetry with the other benches;
//!   every deterministic column of this grid is computed by serial
//!   verdict runners, so the flag never changes the document (the
//!   `scripts/check.sh` byte-compare pins exactly that);
//! * `--json` — print the benchmark document instead of the markdown
//!   table;
//! * `--no-timings` — strip the timing fields, leaving only bit-for-bit
//!   reproducible columns; `scripts/check.sh` byte-compares this form
//!   across thread counts;
//! * `--out PATH` — write the document to `PATH` (default
//!   `BENCH_crossover.json` for non-smoke runs);
//! * `--checkpoint PATH` / `--resume` — journal each completed cell to
//!   `PATH` and, on resume, replay it instead of re-timing (see
//!   `docs/RUNNER.md`);
//! * `--inject-panic N` / `ANONET_FAIL_CELL=N` — fault-injection hook;
//! * `--lint-checkpoint PATH` — validate a journal and exit;
//! * `--lint-bench PATH` — re-parse a committed `BENCH_crossover.json`
//!   with the vendored float-free JSON reader, re-check the crossover
//!   gate (some fault cell where the history-tree arm reports the exact
//!   count in strictly fewer rounds and strictly less wall-clock than
//!   the kernel arm) and the largest-`n` target, and exit.
//!
//! Every cell re-proves correctness before timing (the history-tree arm
//! reporting exactly `n` at `horizon + 2` on every cell, the kernel arm
//! matching that bound on clean cells and *not* reporting `n` on fault
//! cells, the degree oracle counting its `n + 3`-node transform); the
//! document is schema-validated in-process before anything is written,
//! and full runs must additionally pass the acceptance gates.

use anonet_bench::experiments::checkpoint::{lint_journal, run_serial_checkpointed};
use anonet_bench::experiments::crossover::{
    bench_doc, cell_from_payload, cell_payload, check_gates, crossover_table, grid_specs,
    lint_committed, validate_doc, CellSpec, Grid,
};
use anonet_bench::experiments::runner::{arg_value, GridConfig, RunOutcome};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    if let Some(path) = arg_value(&args, "--lint-checkpoint") {
        match lint_journal(std::path::Path::new(&path)) {
            Ok(n) => {
                println!("checkpoint ok: {n} records, no truncated lines");
                return;
            }
            Err(e) => {
                eprintln!("error: checkpoint lint failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = arg_value(&args, "--lint-bench") {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        let doc = match anonet_trace::json::JsonValue::parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("error: {path} is not float-free JSON: {e}");
                std::process::exit(1);
            }
        };
        match lint_committed(&doc) {
            Ok(()) => {
                println!("{path}: schema, decision bounds, crossover gate and size target ok");
                return;
            }
            Err(e) => {
                eprintln!("error: BENCH_crossover lint failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let grid = if has("--smoke") {
        Grid::Smoke
    } else if has("--quick") {
        Grid::Quick
    } else {
        Grid::Full
    };
    let out_flag = arg_value(&args, "--out");

    let cfg = GridConfig::from_args(&args);
    let specs = grid_specs(grid);
    let ids: Vec<String> = specs.iter().map(CellSpec::id).collect();
    let result = match run_serial_checkpointed(&ids, &cfg, cell_payload, cell_from_payload, |i| {
        specs[i].run()
    }) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let mut failed = 0usize;
    for (i, outcome) in result.outcomes.iter().enumerate() {
        match outcome {
            RunOutcome::Skipped { resumed: true } => {
                eprintln!("cell {i} (`{}`): resumed from checkpoint", ids[i]);
            }
            RunOutcome::Failed { panic_msg } => {
                failed += 1;
                eprintln!("error: cell {i} (`{}`) failed: {panic_msg}", ids[i]);
            }
            _ => {}
        }
    }
    let Some(cells) = result.complete() else {
        eprintln!(
            "error: {failed} of {} cells failed{}",
            ids.len(),
            if cfg.checkpoint.is_some() {
                "; completed cells are journaled — rerun with --resume to finish"
            } else {
                ""
            }
        );
        std::process::exit(1);
    };

    let timings = !has("--no-timings");
    let doc = bench_doc(&cells, timings);
    if let Err(e) = validate_doc(&doc) {
        eprintln!("error: BENCH_crossover schema check failed: {e}");
        std::process::exit(1);
    }
    if grid == Grid::Full {
        if let Err(e) = check_gates(&cells) {
            eprintln!("error: BENCH_crossover acceptance gate failed: {e}");
            std::process::exit(1);
        }
    }

    let pretty = serde_json::to_string_pretty(&doc).expect("document serializes");
    if has("--json") {
        println!("{pretty}");
    } else {
        println!("{}", crossover_table(&cells));
    }

    let path = match (grid, out_flag) {
        (Grid::Smoke, None) => None, // smoke validates only
        (_, Some(p)) => Some(p),
        (_, None) => Some("BENCH_crossover.json".to_string()),
    };
    match path {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, format!("{pretty}\n")) {
                eprintln!("error: cannot write {p}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {p} ({} cells, schema ok)", cells.len());
        }
        None => eprintln!(
            "BENCH_crossover schema ok ({} cells, nothing written)",
            cells.len()
        ),
    }
}
