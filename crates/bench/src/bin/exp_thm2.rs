//! Regenerates Theorem 2 (the Omega(log |V|) counting cost curve).
//!
//! Usage: `cargo run -p anonet-bench --bin exp_thm2 [--json] [--csv] [--threads N] [--checkpoint PATH [--resume]]`
//!
//! Crash-safe flags (checkpoint/resume, fault injection) are shared by
//! every experiment binary — see `docs/RUNNER.md`.

use anonet_bench::experiments::runner::Cell;

fn main() {
    anonet_bench::run_and_emit(&[Cell::new("thm2", || anonet_bench::experiments::thm2(false))]);
}
