//! Regenerates Theorem 2 (the Omega(log |V|) counting cost curve).
//!
//! Usage: `cargo run -p anonet-bench --bin exp_thm2 [--json]`

fn main() {
    anonet_bench::emit(&[anonet_bench::experiments::thm2(false)]);
}
