//! Regenerates the Discussion (degree-oracle O(1) counting).
//!
//! Usage: `cargo run -p anonet-bench --bin exp_discussion [--json]`

fn main() {
    anonet_bench::emit(&[anonet_bench::experiments::discussion()]);
}
