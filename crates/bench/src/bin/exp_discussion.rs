//! Regenerates the Discussion (degree-oracle O(1) counting).
//!
//! Usage: `cargo run -p anonet-bench --bin exp_discussion [--json] [--csv] [--threads N]`

use anonet_bench::experiments::runner::Cell;

fn main() {
    anonet_bench::run_and_emit(&[Cell::new("discussion", anonet_bench::experiments::discussion)]);
}
