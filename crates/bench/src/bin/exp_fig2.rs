//! Regenerates the paper's Figure 2 (M(DBL_3) -> G(PD)_2 transformation).
//!
//! Usage: `cargo run -p anonet-bench --bin exp_fig2 [--json]`

fn main() {
    anonet_bench::emit(&[anonet_bench::experiments::fig2()]);
}
