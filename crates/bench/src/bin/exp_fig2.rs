//! Regenerates the paper's Figure 2 (M(DBL_3) -> G(PD)_2 transformation).
//!
//! Usage: `cargo run -p anonet-bench --bin exp_fig2 [--json] [--csv] [--threads N] [--checkpoint PATH [--resume]]`
//!
//! Crash-safe flags (checkpoint/resume, fault injection) are shared by
//! every experiment binary — see `docs/RUNNER.md`.

use anonet_bench::experiments::runner::Cell;

fn main() {
    anonet_bench::run_and_emit(&[Cell::new("fig2", anonet_bench::experiments::fig2)]);
}
