//! Regenerates the section-2 token-dissemination benchmark.
//!
//! Usage: `cargo run -p anonet-bench --bin exp_tokens [--json]`

fn main() {
    anonet_bench::emit(&[anonet_bench::experiments::token_dissemination()]);
}
