//! Regenerates the push-sum gossip baseline \[8\].
//!
//! Usage: `cargo run -p anonet-bench --bin exp_gossip [--json]`

fn main() {
    anonet_bench::emit(&[anonet_bench::experiments::gossip()]);
}
