//! Regenerates the paper's Figure 4 (round-1 indistinguishable twins).
//!
//! Usage: `cargo run -p anonet-bench --bin exp_fig4 [--json]`

fn main() {
    anonet_bench::emit(&[anonet_bench::experiments::fig4()]);
}
