//! Regenerates E24: the socketed peer runtime over loopback TCP,
//! cross-validated against the in-memory oracle.
//!
//! Usage: `cargo run -p anonet-bench --bin exp_net [--smoke] [--json] [--csv] [--threads N] [--checkpoint PATH [--resume]]`
//!
//! `--smoke` runs the reduced grid (8-peer clusters, two archived E22a
//! schedules) with the same in-process assertions — a socketed verdict
//! differing from the oracle's, a wrong count, an untyped wire error,
//! or an unbounded timeout panics the cell and the binary exits
//! non-zero — making this binary the CI gate for the wire-level safety
//! contract.
//!
//! Every cell spawns its own loopback cluster (leader, ≥ 8 peer
//! threads, fault proxies), so cells are order- and
//! thread-independent like every other experiment grid.
//!
//! Crash-safe flags (checkpoint/resume, `--inject-panic` of the *runner
//! process* — unrelated to the wire faults measured here) are shared by
//! every experiment binary — see `docs/RUNNER.md`.

use anonet_bench::experiments::net;
use anonet_bench::experiments::runner::Cell;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    anonet_bench::run_and_emit(&[
        Cell::new("net_cross_validation", move || {
            net::net_cross_validation(smoke)
        }),
        Cell::new("net_watchdog", move || net::net_watchdog(smoke)),
        Cell::new("net_e22_replay", move || net::net_e22_replay(smoke)),
    ]);
}
