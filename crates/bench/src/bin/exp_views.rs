//! Regenerates the view-complexity (hash-consing) measurement.
//!
//! Usage: `cargo run -p anonet-bench --bin exp_views [--json]`

fn main() {
    anonet_bench::emit(&[anonet_bench::experiments::view_complexity()]);
}
