//! Regenerates the view-complexity (hash-consing) measurement.
//!
//! Usage: `cargo run -p anonet-bench --bin exp_views [--json] [--csv] [--threads N] [--checkpoint PATH [--resume]]`
//!
//! Crash-safe flags (checkpoint/resume, fault injection) are shared by
//! every experiment binary — see `docs/RUNNER.md`.

use anonet_bench::experiments::runner::Cell;

fn main() {
    anonet_bench::run_and_emit(&[Cell::new("views", anonet_bench::experiments::view_complexity)]);
}
