//! Runs the complete experiment suite (every figure, lemma, theorem,
//! corollary and baseline) and prints the paper-style tables.
//!
//! Usage: `cargo run --release -p anonet-bench --bin exp_all [--quick] [--json]`

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    anonet_bench::emit(&anonet_bench::experiments::all(quick));
}
