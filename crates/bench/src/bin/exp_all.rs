//! Runs the complete experiment suite (every figure, lemma, theorem,
//! corollary and baseline) on the parallel grid runner and prints the
//! paper-style tables. Results are identical for every thread count.
//!
//! Usage: `cargo run --release -p anonet-bench --bin exp_all [--quick] [--json] [--csv] [--threads N] [--checkpoint PATH [--resume]]`
//!
//! Crash-safe flags (checkpoint/resume, fault injection) are shared by
//! every experiment binary — see `docs/RUNNER.md`.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    anonet_bench::run_and_emit(&anonet_bench::experiments::all_cells(quick));
}
