//! Regenerates Lemma 4 (kernel component sums).
//!
//! Usage: `cargo run -p anonet-bench --bin exp_lemma4 [--json] [--csv] [--threads N] [--checkpoint PATH [--resume]]`
//!
//! Crash-safe flags (checkpoint/resume, fault injection) are shared by
//! every experiment binary — see `docs/RUNNER.md`.

use anonet_bench::experiments::runner::Cell;

fn main() {
    anonet_bench::run_and_emit(&[Cell::new("lemma4", || anonet_bench::experiments::lemma4(12))]);
}
