//! Regenerates Lemma 4 (kernel component sums).
//!
//! Usage: `cargo run -p anonet-bench --bin exp_lemma4 [--json]`

fn main() {
    anonet_bench::emit(&[anonet_bench::experiments::lemma4(12)]);
}
