//! Mod-p vs exact incremental kernel maintenance (`BENCH_modp.json`).
//!
//! Flags:
//!
//! * `--quick` — reduced grid; `--smoke` — tiny grid, schema check only
//!   (writes no file unless `--out` is given);
//! * `--json` — print the benchmark document instead of the markdown
//!   table;
//! * `--out PATH` — write the document to `PATH` (default
//!   `BENCH_modp.json` for non-smoke runs);
//! * `--checkpoint PATH` / `--resume` — journal each completed cell to
//!   `PATH` and, on resume, replay it instead of re-timing (see
//!   `docs/RUNNER.md`);
//! * `--inject-panic N` / `ANONET_FAIL_CELL=N` — fault-injection hook;
//! * `--threads N` — worker count for the fast cells' un-timed
//!   batch-eliminator determinism check (timed arms stay serial);
//! * `--no-timings` — omit every wall-clock field from the document,
//!   leaving only deterministic facts (rank, echelon digest), so runs
//!   at different thread counts emit byte-identical documents;
//! * `--lint-checkpoint PATH` — validate a journal and exit;
//! * `--lint-bench PATH` — re-parse and gate a committed
//!   `BENCH_modp.json` and exit.
//!
//! The document is always schema-validated in-process before anything
//! is written, and full-grid runs must additionally pass the
//! acceptance gates (≥ 5× speedup at the largest shared cell, one
//! `n ≥ 512` cell under the exact `n = 128` baseline, and the largest
//! fast cell reaching `n ≥ 10^5` rows at ≥ 3× over the scalar path).

use anonet_bench::experiments::checkpoint::{lint_journal, run_serial_checkpointed};
use anonet_bench::experiments::modp_scaling::{
    bench_doc, cell_from_payload, cell_payload, check_gates, grid_specs, lint_committed,
    scaling_table, validate_doc, CellSpec, Grid,
};
use anonet_bench::experiments::runner::{arg_value, GridConfig, RunOutcome};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    if let Some(path) = arg_value(&args, "--lint-checkpoint") {
        match lint_journal(std::path::Path::new(&path)) {
            Ok(n) => {
                println!("checkpoint ok: {n} records, no truncated lines");
                return;
            }
            Err(e) => {
                eprintln!("error: checkpoint lint failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = arg_value(&args, "--lint-bench") {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        let doc = match anonet_trace::json::JsonValue::parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("error: {path} is not float-free JSON: {e}");
                std::process::exit(1);
            }
        };
        match lint_committed(&doc) {
            Ok(()) => {
                println!("{path}: schema, speedup floors and fast scaling target ok");
                return;
            }
            Err(e) => {
                eprintln!("error: BENCH_modp lint failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let grid = if has("--smoke") {
        Grid::Smoke
    } else if has("--quick") {
        Grid::Quick
    } else {
        Grid::Full
    };
    let out_flag = arg_value(&args, "--out");

    let cfg = GridConfig::from_args(&args);
    let specs = grid_specs(grid, cfg.threads.max(1));
    let ids: Vec<String> = specs.iter().map(CellSpec::id).collect();
    let result = match run_serial_checkpointed(&ids, &cfg, cell_payload, cell_from_payload, |i| {
        specs[i].run()
    }) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let mut failed = 0usize;
    for (i, outcome) in result.outcomes.iter().enumerate() {
        match outcome {
            RunOutcome::Skipped { resumed: true } => {
                eprintln!("cell {i} (`{}`): resumed from checkpoint", ids[i]);
            }
            RunOutcome::Failed { panic_msg } => {
                failed += 1;
                eprintln!("error: cell {i} (`{}`) failed: {panic_msg}", ids[i]);
            }
            _ => {}
        }
    }
    let Some(cells) = result.complete() else {
        eprintln!(
            "error: {failed} of {} cells failed{}",
            ids.len(),
            if cfg.checkpoint.is_some() {
                "; completed cells are journaled — rerun with --resume to finish"
            } else {
                ""
            }
        );
        std::process::exit(1);
    };

    let doc = bench_doc(&cells, !has("--no-timings"));
    if let Err(e) = validate_doc(&doc) {
        eprintln!("error: BENCH_modp schema check failed: {e}");
        std::process::exit(1);
    }
    if grid == Grid::Full {
        if let Err(e) = check_gates(&cells) {
            eprintln!("error: BENCH_modp acceptance gate failed: {e}");
            std::process::exit(1);
        }
    }

    let pretty = serde_json::to_string_pretty(&doc).expect("document serializes");
    if has("--json") {
        println!("{pretty}");
    } else {
        println!("{}", scaling_table(&cells));
    }

    let path = match (grid, out_flag) {
        (Grid::Smoke, None) => None, // smoke validates only
        (_, Some(p)) => Some(p),
        (_, None) => Some("BENCH_modp.json".to_string()),
    };
    match path {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, format!("{pretty}\n")) {
                eprintln!("error: cannot write {p}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {p} ({} cells, schema ok)", cells.len());
        }
        None => eprintln!("BENCH_modp schema ok ({} cells, nothing written)", cells.len()),
    }
}
