//! Mod-p vs exact incremental kernel maintenance (`BENCH_modp.json`).
//!
//! Flags:
//!
//! * `--quick` — reduced grid; `--smoke` — tiny grid, schema check only
//!   (writes no file unless `--out` is given);
//! * `--json` — print the benchmark document instead of the markdown
//!   table;
//! * `--out PATH` — write the document to `PATH` (default
//!   `BENCH_modp.json` for non-smoke runs).
//!
//! The document is always schema-validated in-process before anything
//! is written, and full-grid runs must additionally pass the
//! acceptance gates (≥ 5× speedup at the largest shared cell, one
//! `n ≥ 512` cell under the exact `n = 128` baseline).

use anonet_bench::experiments::modp_scaling::{
    bench_doc, check_gates, run_scaling, scaling_table, validate_doc, Grid,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let grid = if has("--smoke") {
        Grid::Smoke
    } else if has("--quick") {
        Grid::Quick
    } else {
        Grid::Full
    };
    let out_flag = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let cells = run_scaling(grid);
    let doc = bench_doc(&cells);
    if let Err(e) = validate_doc(&doc) {
        eprintln!("error: BENCH_modp schema check failed: {e}");
        std::process::exit(1);
    }
    if grid == Grid::Full {
        if let Err(e) = check_gates(&cells) {
            eprintln!("error: BENCH_modp acceptance gate failed: {e}");
            std::process::exit(1);
        }
    }

    let pretty = serde_json::to_string_pretty(&doc).expect("document serializes");
    if has("--json") {
        println!("{pretty}");
    } else {
        println!("{}", scaling_table(&cells));
    }

    let path = match (grid, out_flag) {
        (Grid::Smoke, None) => None, // smoke validates only
        (_, Some(p)) => Some(p),
        (_, None) => Some("BENCH_modp.json".to_string()),
    };
    match path {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, format!("{pretty}\n")) {
                eprintln!("error: cannot write {p}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {p} ({} cells, schema ok)", cells.len());
        }
        None => eprintln!("BENCH_modp schema ok ({} cells, nothing written)", cells.len()),
    }
}
