//! Regenerates the extension experiment `pd2_view_counting`.
//!
//! Usage: `cargo run -p anonet-bench --bin exp_pd2views [--json]`

fn main() {
    anonet_bench::emit(&[anonet_bench::experiments::pd2_view_counting()]);
}
