//! Regenerates the extension experiment `pd2_view_counting`.
//!
//! Usage: `cargo run -p anonet-bench --bin exp_pd2views [--json] [--csv] [--threads N] [--checkpoint PATH [--resume]]`
//!
//! Crash-safe flags (checkpoint/resume, fault injection) are shared by
//! every experiment binary — see `docs/RUNNER.md`.

use anonet_bench::experiments::runner::Cell;

fn main() {
    anonet_bench::run_and_emit(&[Cell::new("pd2views", anonet_bench::experiments::pd2_view_counting)]);
}
