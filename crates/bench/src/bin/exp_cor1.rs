//! Regenerates Corollary 1 (D + Omega(log |V|) via the chain construction).
//!
//! Usage: `cargo run -p anonet-bench --bin exp_cor1 [--json]`

fn main() {
    anonet_bench::emit(&[anonet_bench::experiments::cor1()]);
}
