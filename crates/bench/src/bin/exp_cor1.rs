//! Regenerates Corollary 1 (D + Omega(log |V|) via the chain construction).
//!
//! Usage: `cargo run -p anonet-bench --bin exp_cor1 [--json] [--csv] [--threads N] [--checkpoint PATH [--resume]]`
//!
//! Crash-safe flags (checkpoint/resume, fault injection) are shared by
//! every experiment binary — see `docs/RUNNER.md`.

use anonet_bench::experiments::runner::Cell;

fn main() {
    anonet_bench::run_and_emit(&[Cell::new("cor1", anonet_bench::experiments::cor1)]);
}
