//! Coverage-guided adversary search (E23, `docs/SEARCH.md`).
//!
//! Runs one seeded search campaign per `(algorithm, n)` cell of
//! `experiments::search::campaign_specs`, each mutating adversary
//! schedules to maximize (verdict class, decision round) against the
//! guarded verdict oracles, and reports every campaign against its E22
//! seeded-random baseline.
//!
//! Flags:
//!
//! * `--smoke` — bounded CI grid (24 iterations per campaign, no
//!   beats-baseline gate); `--quick` — the same reduced iteration
//!   budget with the gate kept;
//! * `--threads N` — campaigns run in parallel; never changes any
//!   output byte (campaigns are pure functions of their specs);
//! * `--json` — print the campaign document (float-free, byte-stable;
//!   `scripts/check.sh` byte-compares it across thread counts) instead
//!   of the summary table;
//! * `--out PATH` — also write the document to `PATH`;
//! * `--write-corpus DIR` — write the regression corpus (the E22a
//!   silent-wrong representatives plus each campaign's champion) as
//!   pretty-rendered `DIR/<name>.json` files — the generator of
//!   `tests/corpus/`;
//! * `--checkpoint PATH` / `--resume` — journal each completed campaign
//!   to `PATH` and replay it on resume (kill-safe; see
//!   `docs/RUNNER.md`);
//! * `--inject-panic N` / `ANONET_FAIL_CELL=N` — fault-injection hook;
//! * `--lint-checkpoint PATH` — validate a journal and exit.
//!
//! Before anything is emitted, every archived schedule is replayed
//! through the oracle and must reproduce its recorded verdict exactly;
//! full/quick runs must additionally have at least one campaign beat
//! its E22 baseline (the brief's acceptance gate).

use anonet_bench::experiments::checkpoint::{lint_journal, run_parallel_checkpointed};
use anonet_bench::experiments::runner::{arg_value, GridConfig, RunOutcome};
use anonet_bench::experiments::search::{
    campaign_specs, corpus_entries, decode_campaign, encode_campaign, run_campaign, summary_table,
    verify_archives, CampaignResult,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    if let Some(path) = arg_value(&args, "--lint-checkpoint") {
        match lint_journal(std::path::Path::new(&path)) {
            Ok(n) => {
                println!("checkpoint ok: {n} records, no truncated lines");
                return;
            }
            Err(e) => {
                eprintln!("error: checkpoint lint failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let smoke = has("--smoke");
    let quick = smoke || has("--quick");

    let cfg = GridConfig::from_args(&args);
    let specs = campaign_specs(quick);
    let ids: Vec<String> = specs.iter().map(|s| s.id()).collect();
    let result = match run_parallel_checkpointed(
        &ids,
        &cfg,
        |r: &CampaignResult| encode_campaign(r),
        decode_campaign,
        |i| run_campaign(&specs[i], quick),
    ) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let mut failed = 0usize;
    for (i, outcome) in result.outcomes.iter().enumerate() {
        match outcome {
            RunOutcome::Skipped { resumed: true } => {
                eprintln!("campaign {i} (`{}`): resumed from checkpoint", ids[i]);
            }
            RunOutcome::Failed { panic_msg } => {
                failed += 1;
                eprintln!("error: campaign {i} (`{}`) failed: {panic_msg}", ids[i]);
            }
            _ => {}
        }
    }
    let Some(results) = result.complete() else {
        eprintln!(
            "error: {failed} of {} campaigns failed{}",
            ids.len(),
            if cfg.checkpoint.is_some() {
                "; completed campaigns are journaled — rerun with --resume to finish"
            } else {
                ""
            }
        );
        std::process::exit(1);
    };

    if let Err(e) = verify_archives(&results) {
        eprintln!("error: archive replay check failed: {e}");
        std::process::exit(1);
    }
    if !smoke {
        let winners = results.iter().filter(|r| r.beats_baseline()).count();
        if winners == 0 {
            eprintln!("error: no campaign beat its E22 seeded-random baseline");
            std::process::exit(1);
        }
        eprintln!(
            "{winners} of {} campaigns beat their E22 baseline",
            results.len()
        );
    }

    let doc = search_doc(&results);
    if has("--json") {
        println!("{doc}");
    } else {
        println!("{}", summary_table(&results));
    }
    if let Some(p) = arg_value(&args, "--out") {
        if let Err(e) = std::fs::write(&p, format!("{doc}\n")) {
            eprintln!("error: cannot write {p}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {p} ({} campaigns)", results.len());
    }
    if let Some(dir) = arg_value(&args, "--write-corpus") {
        let dir = std::path::Path::new(&dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
        let entries = corpus_entries(&results, quick);
        for entry in &entries {
            let path = dir.join(format!("{}.json", entry.name));
            if let Err(e) = std::fs::write(&path, entry.render()) {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        eprintln!("wrote {} corpus schedules to {}", entries.len(), dir.display());
    }
}

/// The byte-stable campaign document: a fixed header and one
/// [`encode_campaign`] line per campaign, in grid order.
fn search_doc(results: &[CampaignResult]) -> String {
    let lines: Vec<String> = results.iter().map(encode_campaign).collect();
    format!("{{\"v\":1,\"campaigns\":[\n{}\n]}}", lines.join(",\n"))
}
