//! Large-`n` scaling of the struct-of-arrays simulation core
//! (`BENCH_scale.json`).
//!
//! Flags:
//!
//! * `--quick` — reduced grid; `--smoke` — the CI grid (one shared cell
//!   plus a single `n = 10^5` execution; writes no file unless `--out`
//!   is given);
//! * `--threads N` — worker count of the threaded arm (else
//!   `ANONET_THREADS`, else auto); never changes which cells run or any
//!   deterministic column;
//! * `--json` — print the benchmark document instead of the markdown
//!   table;
//! * `--no-timings` — strip the timing fields (and the thread count)
//!   from the document, leaving only bit-for-bit reproducible columns;
//!   `scripts/check.sh` byte-compares this form across thread counts;
//! * `--out PATH` — write the document to `PATH` (default
//!   `BENCH_scale.json` for non-smoke runs);
//! * `--checkpoint PATH` / `--resume` — journal each completed cell to
//!   `PATH` and, on resume, replay it instead of re-timing (see
//!   `docs/RUNNER.md`);
//! * `--inject-panic N` / `ANONET_FAIL_CELL=N` — fault-injection hook;
//! * `--lint-checkpoint PATH` — validate a journal and exit;
//! * `--lint-bench PATH` — re-parse a committed `BENCH_scale.json`
//!   with the vendored float-free JSON reader, re-check the speedup
//!   floor and the `n = 10^5` scaling target, and exit.
//!
//! Every cell re-proves correctness before timing (byte-identical
//! serial-vs-threaded runs, reference-arm equality on shared cells, the
//! leader deciding exactly `n` at round `horizon + 2`); the document is
//! schema-validated in-process before anything is written, and full
//! runs must additionally pass the acceptance gates (speedup floor at
//! the best shared cell, grid reaching `n = 10^5`).

use anonet_bench::experiments::checkpoint::{lint_journal, run_serial_checkpointed};
use anonet_bench::experiments::runner::{arg_value, GridConfig, RunOutcome};
use anonet_bench::experiments::scale::{
    bench_doc, cell_from_payload, cell_payload, check_gates, grid_specs, lint_committed,
    scaling_table, validate_doc, CellSpec, Grid,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    if let Some(path) = arg_value(&args, "--lint-checkpoint") {
        match lint_journal(std::path::Path::new(&path)) {
            Ok(n) => {
                println!("checkpoint ok: {n} records, no truncated lines");
                return;
            }
            Err(e) => {
                eprintln!("error: checkpoint lint failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = arg_value(&args, "--lint-bench") {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        let doc = match anonet_trace::json::JsonValue::parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("error: {path} is not float-free JSON: {e}");
                std::process::exit(1);
            }
        };
        match lint_committed(&doc) {
            Ok(()) => {
                println!("{path}: schema, decision bound, speedup floor and scaling target ok");
                return;
            }
            Err(e) => {
                eprintln!("error: BENCH_scale lint failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let grid = if has("--smoke") {
        Grid::Smoke
    } else if has("--quick") {
        Grid::Quick
    } else {
        Grid::Full
    };
    let out_flag = arg_value(&args, "--out");

    let cfg = GridConfig::from_args(&args);
    let specs = grid_specs(grid, cfg.threads.max(1));
    let ids: Vec<String> = specs.iter().map(CellSpec::id).collect();
    let result = match run_serial_checkpointed(&ids, &cfg, cell_payload, cell_from_payload, |i| {
        specs[i].run()
    }) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let mut failed = 0usize;
    for (i, outcome) in result.outcomes.iter().enumerate() {
        match outcome {
            RunOutcome::Skipped { resumed: true } => {
                eprintln!("cell {i} (`{}`): resumed from checkpoint", ids[i]);
            }
            RunOutcome::Failed { panic_msg } => {
                failed += 1;
                eprintln!("error: cell {i} (`{}`) failed: {panic_msg}", ids[i]);
            }
            _ => {}
        }
    }
    let Some(cells) = result.complete() else {
        eprintln!(
            "error: {failed} of {} cells failed{}",
            ids.len(),
            if cfg.checkpoint.is_some() {
                "; completed cells are journaled — rerun with --resume to finish"
            } else {
                ""
            }
        );
        std::process::exit(1);
    };

    let timings = !has("--no-timings");
    let doc = bench_doc(&cells, timings);
    if let Err(e) = validate_doc(&doc) {
        eprintln!("error: BENCH_scale schema check failed: {e}");
        std::process::exit(1);
    }
    if grid == Grid::Full {
        if let Err(e) = check_gates(&cells) {
            eprintln!("error: BENCH_scale acceptance gate failed: {e}");
            std::process::exit(1);
        }
    }

    let pretty = serde_json::to_string_pretty(&doc).expect("document serializes");
    if has("--json") {
        println!("{pretty}");
    } else {
        println!("{}", scaling_table(&cells));
    }

    let path = match (grid, out_flag) {
        (Grid::Smoke, None) => None, // smoke validates only
        (_, Some(p)) => Some(p),
        (_, None) => Some("BENCH_scale.json".to_string()),
    };
    match path {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, format!("{pretty}\n")) {
                eprintln!("error: cannot write {p}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {p} ({} cells, schema ok)", cells.len());
        }
        None => eprintln!("BENCH_scale schema ok ({} cells, nothing written)", cells.len()),
    }
}
