//! Regenerates the section-5 dissemination-vs-counting gap.
//!
//! Usage: `cargo run -p anonet-bench --bin exp_gap [--json] [--csv] [--threads N] [--checkpoint PATH [--resume]]`
//!
//! Crash-safe flags (checkpoint/resume, fault injection) are shared by
//! every experiment binary — see `docs/RUNNER.md`.

use anonet_bench::experiments::runner::Cell;

fn main() {
    anonet_bench::run_and_emit(&[Cell::new("gap", anonet_bench::experiments::gap)]);
}
