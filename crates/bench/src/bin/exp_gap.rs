//! Regenerates the section-5 dissemination-vs-counting gap.
//!
//! Usage: `cargo run -p anonet-bench --bin exp_gap [--json]`

fn main() {
    anonet_bench::emit(&[anonet_bench::experiments::gap()]);
}
