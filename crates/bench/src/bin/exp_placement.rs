//! Regenerates the extension experiment `placement_ablation`.
//!
//! Usage: `cargo run -p anonet-bench --bin exp_placement [--json]`

fn main() {
    anonet_bench::emit(&[anonet_bench::experiments::placement_ablation()]);
}
