//! Regenerates the extension experiment `placement_ablation`.
//!
//! Usage: `cargo run -p anonet-bench --bin exp_placement [--json] [--csv] [--threads N]`

use anonet_bench::experiments::runner::Cell;

fn main() {
    anonet_bench::run_and_emit(&[Cell::new("placement", anonet_bench::experiments::placement_ablation)]);
}
