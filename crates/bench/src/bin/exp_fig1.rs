//! Regenerates the paper's Figure 1 (G(PD)_2 example, D = 4).
//!
//! Usage: `cargo run -p anonet-bench --bin exp_fig1 [--json]`

fn main() {
    anonet_bench::emit(&[anonet_bench::experiments::fig1()]);
}
