//! Regenerates the paper's Figure 1 (G(PD)_2 example, D = 4).
//!
//! Usage: `cargo run -p anonet-bench --bin exp_fig1 [--json] [--csv] [--threads N] [--checkpoint PATH [--resume]]`
//!
//! Crash-safe flags (checkpoint/resume, fault injection) are shared by
//! every experiment binary — see `docs/RUNNER.md`.

use anonet_bench::experiments::runner::Cell;

fn main() {
    anonet_bench::run_and_emit(&[Cell::new("fig1", anonet_bench::experiments::fig1)]);
}
