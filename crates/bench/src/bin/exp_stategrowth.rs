//! Regenerates the extension experiment `state_growth`.
//!
//! Usage: `cargo run -p anonet-bench --bin exp_stategrowth [--json]`

fn main() {
    anonet_bench::emit(&[anonet_bench::experiments::state_growth()]);
}
