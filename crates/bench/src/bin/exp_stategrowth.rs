//! Regenerates the extension experiment `state_growth`.
//!
//! Usage: `cargo run -p anonet-bench --bin exp_stategrowth [--json] [--csv] [--threads N]`

use anonet_bench::experiments::runner::Cell;

fn main() {
    anonet_bench::run_and_emit(&[Cell::new("stategrowth", anonet_bench::experiments::state_growth)]);
}
