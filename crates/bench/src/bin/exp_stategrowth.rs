//! Regenerates the extension experiment `state_growth`.
//!
//! Usage: `cargo run -p anonet-bench --bin exp_stategrowth [--json] [--csv] [--threads N] [--checkpoint PATH [--resume]]`
//!
//! Crash-safe flags (checkpoint/resume, fault injection) are shared by
//! every experiment binary — see `docs/RUNNER.md`.

use anonet_bench::experiments::runner::Cell;

fn main() {
    anonet_bench::run_and_emit(&[Cell::new("stategrowth", anonet_bench::experiments::state_growth)]);
}
