//! Regenerates the exhaustive enumeration baseline \[12\]/\[13\].
//!
//! Usage: `cargo run -p anonet-bench --bin exp_enum [--json]`

fn main() {
    anonet_bench::emit(&[anonet_bench::experiments::enumeration()]);
}
