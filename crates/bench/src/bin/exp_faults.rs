//! Regenerates E22: the safety envelope under fault injection.
//!
//! Usage: `cargo run -p anonet-bench --bin exp_faults [--smoke] [--json] [--csv] [--threads N] [--checkpoint PATH [--resume]]`
//!
//! `--smoke` runs the reduced corpus with the same in-process safety
//! assertion (a guarded run reporting a wrong count panics the cell and
//! the binary exits non-zero), making this binary the CI gate for *zero
//! silent-wrong counts with watchdogs on*.
//!
//! Crash-safe flags (checkpoint/resume, fault injection of the *runner
//! process* — unrelated to the network faults measured here) are shared
//! by every experiment binary — see `docs/RUNNER.md`.

use anonet_bench::experiments::faults;
use anonet_bench::experiments::runner::Cell;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    anonet_bench::run_and_emit(&[
        Cell::new("faults_kernel", move || faults::faults_kernel(smoke)),
        Cell::new("faults_general_k", move || faults::faults_general_k(smoke)),
        Cell::new("faults_pd2", move || faults::faults_pd2(smoke)),
        Cell::new("faults_oracle", move || faults::faults_oracle(smoke)),
        Cell::new("faults_massdrain", move || faults::faults_massdrain(smoke)),
        Cell::new("faults_pushsum", move || faults::faults_pushsum(smoke)),
        Cell::new("faults_enum", move || faults::faults_enum(smoke)),
        Cell::new("degradation", move || faults::fault_degradation(smoke)),
    ]);
}
