//! Regenerates Theorem 1 (indistinguishability horizon).
//!
//! Usage: `cargo run -p anonet-bench --bin exp_thm1 [--json]`

fn main() {
    anonet_bench::emit(&[anonet_bench::experiments::thm1()]);
}
