//! Regenerates Lemma 2 (dim ker M_r = 1).
//!
//! Usage: `cargo run -p anonet-bench --bin exp_lemma2 [--json]`

fn main() {
    anonet_bench::emit(&[anonet_bench::experiments::lemma2()]);
}
