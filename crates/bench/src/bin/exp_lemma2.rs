//! Regenerates Lemma 2 (dim ker M_r = 1).
//!
//! Usage: `cargo run -p anonet-bench --bin exp_lemma2 [--json] [--csv] [--threads N] [--checkpoint PATH [--resume]]`
//!
//! Crash-safe flags (checkpoint/resume, fault injection) are shared by
//! every experiment binary — see `docs/RUNNER.md`.

use anonet_bench::experiments::runner::Cell;

fn main() {
    anonet_bench::run_and_emit(&[Cell::new("lemma2", anonet_bench::experiments::lemma2)]);
}
