//! Regenerates the extension experiment `adversary_ablation`.
//!
//! Usage: `cargo run -p anonet-bench --bin exp_adversary_ablation [--json]`

fn main() {
    anonet_bench::emit(&[anonet_bench::experiments::adversary_ablation()]);
}
