//! Regenerates the extension experiment `adversary_ablation`.
//!
//! Usage: `cargo run -p anonet-bench --bin exp_adversary_ablation [--json] [--csv] [--threads N] [--checkpoint PATH [--resume]]`
//!
//! Crash-safe flags (checkpoint/resume, fault injection) are shared by
//! every experiment binary — see `docs/RUNNER.md`.

use anonet_bench::experiments::runner::Cell;

fn main() {
    anonet_bench::run_and_emit(&[Cell::new("adversary_ablation", anonet_bench::experiments::adversary_ablation)]);
}
