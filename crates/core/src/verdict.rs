//! Fault-aware, fail-closed runners: every counting algorithm and
//! baseline reduced to a typed [`Verdict`].
//!
//! The algorithms in [`algorithms`](crate::algorithms) and
//! [`baselines`](crate::baselines) are specified *inside* the paper's
//! model — synchronous reliable broadcast, 1-interval connectivity, a
//! fixed node set, a leader that never loses state. This module asks
//! what happens when an execution steps outside it, and guarantees one
//! property: **with watchdogs enabled, a run never reports a silently
//! wrong count.** It either
//!
//! * reports [`Verdict::Correct`] with the count it decided,
//! * reports [`Verdict::Undecided`] when the horizon elapsed, or
//! * fails closed with [`Verdict::ModelViolation`], naming the broken
//!   assumption ([`ViolationKind`]) and the round of detection.
//!
//! Each algorithm gets a runner with a `watchdogs` switch:
//!
//! | runner | algorithm | fault layer |
//! |---|---|---|
//! | [`kernel_verdict`] | kernel counting (`M(DBL)_2`) | [`FaultPlan`] on deliveries |
//! | [`history_tree_verdict`] | history-tree counting (`M(DBL)_2`) | [`FaultPlan`] on deliveries |
//! | [`general_k_verdict`] | exhaustive general-`k` rule | [`FaultPlan`] on deliveries |
//! | [`pd2_view_verdict`] | `G(PD)_2` view counting | [`FaultPlan::network_plan`] on edges |
//! | [`degree_oracle_verdict`] | O(1) degree oracle | [`FaultPlan::network_plan`] on edges |
//! | [`mass_drain_verdict`] | mass-drain baseline | [`FaultPlan::network_plan`] on edges |
//! | [`pushsum_verdict`] | push-sum baseline | [`FaultPlan::network_plan`] on edges |
//! | [`enumeration_verdict`] | exhaustive enumeration | [`FaultPlan::network_plan`] on edges |
//!
//! With `watchdogs = false` each runner reproduces the unguarded
//! algorithm: it reports whatever count the leader decides (possibly
//! silently wrong under faults — the contrast `exp_faults` measures) and
//! maps internal errors to [`Verdict::Undecided`] instead of panicking.
//!
//! The multigraph runners are traced: `*_with_sink` variants emit the
//! same per-round [`RoundEvent`]s as the plain algorithms, plus the new
//! `fault` facet on rounds a fault struck and a final `violation` event
//! when a watchdog fires. On an **empty plan the emitted events are
//! byte-identical** to the plain `run_with_sink` traces (pinned by
//! `tests/fault_verdicts.rs`): clean rounds carry no fault facet, and
//! post-decision confirmation rounds are not traced.
//!
//! # Examples
//!
//! A duplicated-delivery fault is detected, not mis-counted:
//!
//! ```
//! use anonet_core::verdict::{kernel_verdict, FaultPlan, Verdict};
//! use anonet_multigraph::adversary::TwinBuilder;
//!
//! let pair = TwinBuilder::new().build(13)?;
//! let plan = FaultPlan::new().duplicate_deliveries(1, 3, 0);
//! let guarded = kernel_verdict(&pair.smaller, 8, &plan, true);
//! assert!(matches!(guarded, Verdict::ModelViolation { .. }));
//! // The unguarded leader happily counts a network that never existed.
//! let unguarded = kernel_verdict(&pair.smaller, 8, &plan, false);
//! if let Some(count) = unguarded.count() {
//!     assert_ne!(count, 13);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::algorithms::{run_degree_oracle, run_pd2_view_counting, CountingError, Pd2ViewError};
use crate::baselines::enumeration::run_enumeration_counting;
use crate::baselines::mass_drain::run_mass_drain;
use crate::baselines::pushsum::run_pushsum;
use anonet_graph::faults::FaultyNetwork;
use anonet_graph::{check_interval_connectivity, DynamicNetwork};
use anonet_multigraph::history_tree::{HistoryTreeError, HistoryTreeLeader};
use anonet_multigraph::mutate::AdversarySchedule;
use anonet_multigraph::simulate::OnlineLeader;
use anonet_multigraph::LabelSet;
use anonet_multigraph::system_k::GeneralSystem;
use anonet_multigraph::transform;
use anonet_multigraph::DblMultigraph;
use anonet_multigraph::{HistoryArena, RoundColumns};
use anonet_trace::{NullSink, RoundEvent, TraceSink};

pub use anonet_multigraph::faults::{
    simulate_with_faults, thin_multigraph, watched_verdict, FaultEvent, FaultKind, FaultPlan,
    FaultRecord, FaultedExecution, Verdict, Violation, ViolationKind, WatchedLeader, WatchedRound,
};

/// The growth of the flat constant-terms vector `m_r` at `level`
/// (`2·3^level` new entries, saturating) — matches the `state_size`
/// accounting of [`KernelCounting`](crate::algorithms::KernelCounting).
fn level_state_growth(level: u32) -> u64 {
    3u64.checked_pow(level)
        .and_then(|c| c.checked_mul(2))
        .unwrap_or(u64::MAX)
}

/// Runs the kernel counting algorithm on `m` under `plan` and reduces
/// the run to a [`Verdict`].
///
/// With `watchdogs = true` the leader is a [`WatchedLeader`]: every
/// round passes the four model watchdogs, the decision is provisional
/// and confirmed through the horizon (a fault striking exactly the
/// decision round can leave the observation system coincidentally
/// consistent; the pretend histories fail to extend within a round or
/// two, converting the run to [`Verdict::ModelViolation`]). With
/// `watchdogs = false` the leader is the plain
/// [`OnlineLeader`]: it outputs at the first unique solution and maps
/// ingestion errors to [`Verdict::Undecided`].
pub fn kernel_verdict(m: &DblMultigraph, max_rounds: u32, plan: &FaultPlan, watchdogs: bool) -> Verdict {
    kernel_verdict_with_sink(m, max_rounds, plan, watchdogs, &mut NullSink)
}

/// Like [`kernel_verdict`], additionally emitting one [`RoundEvent`]
/// per observed round (up to the decision round) to `sink` with the
/// same facets as
/// [`KernelCounting::run_with_sink`](crate::algorithms::KernelCounting::run_with_sink),
/// plus `fault` labels on faulted rounds and a final `violation` event
/// when a watchdog fires. Empty-plan traces are byte-identical to the
/// plain algorithm's.
pub fn kernel_verdict_with_sink<S: TraceSink>(
    m: &DblMultigraph,
    max_rounds: u32,
    plan: &FaultPlan,
    watchdogs: bool,
    sink: &mut S,
) -> Verdict {
    let faulted = simulate_with_faults(m, max_rounds as usize, plan);
    if watchdogs {
        kernel_guarded(&faulted, max_rounds, plan, sink)
    } else {
        kernel_unguarded(&faulted, max_rounds, plan, sink)
    }
}

/// The guarded kernel runner as an **incremental session**: the exact
/// loop body of [`kernel_verdict`]'s watchdog arm, factored out so that
/// rounds can arrive one at a time from any transport — the in-memory
/// [`FaultedExecution`] here, a [`RoundSource`](crate::transport::RoundSource)
/// over real sockets in `anonet-net`.
///
/// Feed each observed round to [`step`](GuardedKernelSession::step); a
/// `Some(verdict)` return is terminal (a watchdog fired and the
/// violation event was already emitted). When the stream ends, close
/// with [`finish`](GuardedKernelSession::finish). Driving a session this
/// way over an execution's rounds is byte-for-byte the old inline loop —
/// the empty-plan trace-identity tests pin it.
pub struct GuardedKernelSession {
    leader: WatchedLeader,
    state_size: u64,
    decided: Option<(u64, u32)>,
    round: u32,
}

impl Default for GuardedKernelSession {
    fn default() -> GuardedKernelSession {
        GuardedKernelSession::new()
    }
}

impl GuardedKernelSession {
    /// A fresh session: a [`WatchedLeader`] before its first round.
    pub fn new() -> GuardedKernelSession {
        GuardedKernelSession {
            leader: WatchedLeader::new(),
            state_size: 0,
            decided: None,
            round: 0,
        }
    }

    /// Rounds ingested so far.
    pub fn rounds_seen(&self) -> u32 {
        self.round
    }

    /// The provisional decision, if one was reached (still being
    /// confirmed until the stream ends).
    pub fn decision(&self) -> Option<(u64, u32)> {
        self.decided
    }

    /// The leader's current candidate interval.
    pub fn candidates(&self) -> Option<(i64, i64)> {
        self.leader.candidates()
    }

    /// Ingests the next observed round. Returns `Some(verdict)` when a
    /// watchdog fires — terminal, the violation event has been emitted
    /// and flushed — and `None` to continue.
    pub fn step<S: TraceSink>(
        &mut self,
        arena: &HistoryArena,
        round: &RoundColumns,
        plan: &FaultPlan,
        sink: &mut S,
    ) -> Option<Verdict> {
        let r32 = self.round;
        self.round += 1;
        if plan.has_restart_at(r32) {
            self.leader.restart();
        }
        // Confirmation is budgeted: past the solver's column budget the
        // remaining post-decision rounds keep only the allocation-free
        // watchdogs (growing the O(3^level) system to a distant horizon
        // would cost gigabytes).
        let screened = if self.decided.is_some() && !self.leader.within_confirm_budget() {
            self.leader
                .confirm_screen(arena, round, r32 as usize)
                .map(|()| None)
        } else {
            self.leader.ingest(arena, round).map(Some)
        };
        match screened {
            Err(v) => {
                let mut ev = RoundEvent::new(r32).violation(v.kind.label());
                if let Some(f) = plan.labels_at(r32) {
                    ev = ev.fault(&f);
                }
                sink.record(&ev);
                sink.flush();
                Some(Verdict::ModelViolation {
                    kind: v.kind,
                    round: v.round,
                })
            }
            // Trace emission stops at the decision round; the
            // confirmation rounds that follow are silent so that
            // empty-plan traces match the plain algorithm exactly.
            Ok(Some(wr)) if self.decided.is_none() => {
                self.state_size = self.state_size.saturating_add(level_state_growth(r32));
                let mut ev = RoundEvent::new(r32)
                    .candidates(wr.range.0, wr.range.1)
                    .candidate_count(wr.solution_count)
                    .kernel_dim(wr.kernel_dim)
                    .state_size(self.state_size);
                if let Some(f) = plan.labels_at(r32) {
                    ev = ev.fault(&f);
                }
                sink.record(&ev);
                if let Some(count) = wr.decision {
                    self.decided = Some((count, r32 + 1));
                }
                None
            }
            Ok(_) => None,
        }
    }

    /// Closes the stream after `max_rounds` were available: the
    /// confirmed decision or a decision-less horizon.
    pub fn finish<S: TraceSink>(self, max_rounds: u32, sink: &mut S) -> Verdict {
        sink.flush();
        match self.decided {
            Some((count, rounds)) => Verdict::Correct { count, rounds },
            None => Verdict::Undecided {
                rounds: max_rounds,
                candidates: self.leader.candidates(),
            },
        }
    }

    /// Closes the stream **early** (the transport failed — timeout,
    /// closed connection): always [`Verdict::Undecided`], never an
    /// unconfirmed count. Fail-closed even when a provisional decision
    /// exists, because the remaining confirmation rounds never arrived.
    pub fn interrupt<S: TraceSink>(self, sink: &mut S) -> Verdict {
        sink.flush();
        Verdict::Undecided {
            rounds: self.round,
            candidates: self.leader.candidates(),
        }
    }
}

fn kernel_guarded<S: TraceSink>(
    faulted: &FaultedExecution,
    max_rounds: u32,
    plan: &FaultPlan,
    sink: &mut S,
) -> Verdict {
    let mut session = GuardedKernelSession::new();
    for round in &faulted.execution.rounds {
        if let Some(v) = session.step(&faulted.execution.arena, round, plan, sink) {
            return v;
        }
    }
    session.finish(max_rounds, sink)
}

fn kernel_unguarded<S: TraceSink>(
    faulted: &FaultedExecution,
    max_rounds: u32,
    plan: &FaultPlan,
    sink: &mut S,
) -> Verdict {
    let mut leader = OnlineLeader::new();
    let mut state_size = 0u64;
    for (r, round) in faulted.execution.rounds.iter().enumerate() {
        let r32 = r as u32;
        if plan.has_restart_at(r32) {
            // State loss: the unguarded leader starts over, oblivious.
            leader = OnlineLeader::new();
            state_size = 0;
        }
        match leader.ingest(&faulted.execution.arena, round) {
            // The unguarded leader of PR 1 would have panicked here; the
            // typed error path surfaces as a decision-less horizon.
            Err(_) => {
                sink.flush();
                return Verdict::Undecided {
                    rounds: r32 + 1,
                    candidates: None,
                };
            }
            Ok(decision) => {
                state_size = state_size.saturating_add(level_state_growth(leader.rounds() as u32 - 1));
                let Ok(sol) = leader.solve() else {
                    continue; // unreachable: ingest just succeeded
                };
                let mut ev = RoundEvent::new(r32)
                    .candidate_count(sol.solution_count() as u64)
                    .kernel_dim(1)
                    .state_size(state_size);
                if let Some((lo, hi)) = sol.population_range() {
                    ev = ev.candidates(lo, hi);
                }
                if let Some(f) = plan.labels_at(r32) {
                    ev = ev.fault(&f);
                }
                sink.record(&ev);
                if let Some(count) = decision {
                    sink.flush();
                    return Verdict::Correct {
                        count,
                        rounds: r32 + 1,
                    };
                }
            }
        }
    }
    sink.flush();
    Verdict::Undecided {
        rounds: max_rounds,
        candidates: leader.candidates(),
    }
}

/// Runs the history-tree counting algorithm on `m` under `plan` and
/// reduces the run to a [`Verdict`].
///
/// With `watchdogs = true` the alternating-spine-sum leader of
/// [`HistoryTreeCounting`](crate::algorithms::HistoryTreeCounting) is
/// wrapped in fail-closed screens: malformed deliveries are
/// [`ViolationKind::DeliveryIntegrity`], an empty pre-decision round is
/// [`ViolationKind::Connectivity`], a growing spine delivery count, an
/// empty candidate intersection, a raw candidate interval escaping its
/// predecessor (in-model the per-round intervals nest), a zero count or
/// a post-decision spine *resurrection* (a full-spine history appearing
/// after the spine died) are [`ViolationKind::CensusConservation`].
///
/// The screens are deliberately `O(1)` per round on top of the leader's
/// own `O(deliveries)` — the whole point of this algorithm family is to
/// avoid the kernel's observation system. The price is strictly weaker
/// detection: a fault that leaves the delivery stream consistent with a
/// clean execution of a *different* size at the spine statistics'
/// granularity (e.g. crashing part of a history class mid-run) can slip
/// through guarded — but only when the full observation system would
/// also find that wrong size uniquely feasible, i.e. exactly when the
/// *unguarded* kernel is fooled identically (pinned by the
/// cross-algorithm agreement suite in `tests/algorithm_agreement.rs`). A leader restart leaves
/// the fresh leader expecting round-0 histories, so the next faulted
/// round trips the integrity screen — matching the kernel runner's
/// restart semantics. With `watchdogs = false` the unguarded leader
/// reports whatever the spine sums say (possibly silently wrong under
/// faults) and maps ingestion errors to [`Verdict::Undecided`].
pub fn history_tree_verdict(
    m: &DblMultigraph,
    max_rounds: u32,
    plan: &FaultPlan,
    watchdogs: bool,
) -> Verdict {
    history_tree_verdict_with_sink(m, max_rounds, plan, watchdogs, &mut NullSink)
}

/// Like [`history_tree_verdict`], additionally emitting one
/// [`RoundEvent`] per observed round (up to the decision round) to
/// `sink` with the same facets as
/// [`HistoryTreeCounting::run_with_sink`](crate::algorithms::HistoryTreeCounting::run_with_sink),
/// plus `fault` labels on faulted rounds and a final `violation` event
/// when a watchdog fires. Empty-plan traces are byte-identical to the
/// plain algorithm's.
pub fn history_tree_verdict_with_sink<S: TraceSink>(
    m: &DblMultigraph,
    max_rounds: u32,
    plan: &FaultPlan,
    watchdogs: bool,
    sink: &mut S,
) -> Verdict {
    let faulted = simulate_with_faults(m, max_rounds as usize, plan);
    if watchdogs {
        history_tree_guarded(&faulted, max_rounds, plan, sink)
    } else {
        history_tree_unguarded(&faulted, max_rounds, plan, sink)
    }
}

/// Maps a leader error to the model assumption it breaks: spine-sum
/// contradictions are conservation failures, everything else is a
/// malformed delivery.
fn history_tree_violation(e: &HistoryTreeError) -> ViolationKind {
    match e {
        HistoryTreeError::InconsistentCensus { .. } => ViolationKind::CensusConservation,
        _ => ViolationKind::DeliveryIntegrity,
    }
}

/// The guarded history-tree runner as an **incremental session** — the
/// exact loop body of [`history_tree_verdict`]'s watchdog arm, factored
/// out for round-at-a-time transports the same way as
/// [`GuardedKernelSession`]. Same protocol: [`step`](Self::step) until
/// it returns a terminal verdict, then [`finish`](Self::finish) (stream
/// complete) or [`interrupt`](Self::interrupt) (transport failure,
/// fail-closed to [`Verdict::Undecided`]).
pub struct GuardedHistoryTreeSession {
    leader: HistoryTreeLeader,
    prev_spine: Option<u64>,
    prev_raw: Option<(i64, i64)>,
    decided: Option<(u64, u32)>,
    round: u32,
}

impl Default for GuardedHistoryTreeSession {
    fn default() -> GuardedHistoryTreeSession {
        GuardedHistoryTreeSession::new()
    }
}

impl GuardedHistoryTreeSession {
    /// A fresh session: a [`HistoryTreeLeader`] before its first round.
    pub fn new() -> GuardedHistoryTreeSession {
        GuardedHistoryTreeSession {
            leader: HistoryTreeLeader::new(),
            prev_spine: None,
            prev_raw: None,
            decided: None,
            round: 0,
        }
    }

    /// Rounds ingested so far.
    pub fn rounds_seen(&self) -> u32 {
        self.round
    }

    /// The provisional decision, if one was reached.
    pub fn decision(&self) -> Option<(u64, u32)> {
        self.decided
    }

    /// The leader's current candidate interval.
    pub fn candidates(&self) -> Option<(i64, i64)> {
        self.leader.candidates()
    }

    /// Ingests the next observed round. Returns `Some(verdict)` when a
    /// screen fires — terminal, violation event emitted and flushed —
    /// and `None` to continue.
    pub fn step<S: TraceSink>(
        &mut self,
        arena: &HistoryArena,
        round: &RoundColumns,
        plan: &FaultPlan,
        sink: &mut S,
    ) -> Option<Verdict> {
        let r32 = self.round;
        self.round += 1;
        if plan.has_restart_at(r32) {
            // State loss: the fresh leader expects round-0 histories, so
            // any further delivery fails the integrity screen below.
            self.leader = HistoryTreeLeader::new();
            self.prev_spine = None;
            self.prev_raw = None;
        }
        if self.decided.is_some() {
            // Post-decision confirmation screen: the spine is dead, so
            // beyond well-formedness the only thing left to watch is a
            // full-spine history coming back from the grave.
            if round.is_empty() {
                return Some(violation_verdict(ViolationKind::Connectivity, r32, plan, sink));
            }
            for d in round.iter() {
                let well_formed = arena.history_len(d.state) == r32 as usize
                    && arena.is_ternary(d.state)
                    && (d.label == 1 || d.label == 2);
                if !well_formed {
                    return Some(violation_verdict(
                        ViolationKind::DeliveryIntegrity,
                        r32,
                        plan,
                        sink,
                    ));
                }
                let resurrected = arena
                    .masks(d.state)
                    .iter()
                    .all(|&mask| mask == LabelSet::L12.mask());
                if resurrected {
                    return Some(violation_verdict(
                        ViolationKind::CensusConservation,
                        r32,
                        plan,
                        sink,
                    ));
                }
            }
            return None;
        }
        // In-model every live node delivers at least one message per
        // round; an empty round would otherwise read as spine death.
        if round.is_empty() {
            return Some(violation_verdict(ViolationKind::Connectivity, r32, plan, sink));
        }
        match self.leader.ingest(arena, round) {
            Err(e) => Some(violation_verdict(history_tree_violation(&e), r32, plan, sink)),
            Ok(step) => {
                // In-model d_r = g_r + g_{r+1} is non-increasing; growth
                // means deliveries were forged or replayed.
                let spine = self.leader.spine_deliveries();
                if self.prev_spine.is_some_and(|p| spine > p) {
                    return Some(violation_verdict(
                        ViolationKind::CensusConservation,
                        r32,
                        plan,
                        sink,
                    ));
                }
                self.prev_spine = Some(spine);
                // In-model the raw per-round intervals nest (the spine
                // telescope only ever tightens); a raw interval escaping
                // its predecessor witnesses an out-of-model census even
                // while the running intersection stays non-empty —
                // the same screen the kernel's watcher applies to its
                // per-level population ranges.
                if let (Some((plo, phi)), Some((lo, hi))) =
                    (self.prev_raw, self.leader.raw_candidates())
                {
                    if lo < plo || hi > phi {
                        return Some(violation_verdict(
                            ViolationKind::CensusConservation,
                            r32,
                            plan,
                            sink,
                        ));
                    }
                }
                self.prev_raw = self.leader.raw_candidates();
                let (lo, hi) = self.leader.candidates().unwrap_or((0, i64::MAX));
                let mut ev = RoundEvent::new(r32)
                    .deliveries(round.len() as u64)
                    .candidates(lo, hi)
                    .candidate_count((hi - lo + 1) as u64)
                    .state_size(self.leader.classes())
                    .spine(spine);
                if let Some(f) = plan.labels_at(r32) {
                    ev = ev.fault(&f);
                }
                sink.record(&ev);
                if let Some(count) = step {
                    if count == 0 {
                        // A non-empty round cannot come from zero nodes.
                        return Some(violation_verdict(
                            ViolationKind::CensusConservation,
                            r32,
                            plan,
                            sink,
                        ));
                    }
                    self.decided = Some((count, r32 + 1));
                }
                None
            }
        }
    }

    /// Closes the stream after `max_rounds` were available: the
    /// confirmed decision or a decision-less horizon.
    pub fn finish<S: TraceSink>(self, max_rounds: u32, sink: &mut S) -> Verdict {
        sink.flush();
        match self.decided {
            Some((count, rounds)) => Verdict::Correct { count, rounds },
            None => Verdict::Undecided {
                rounds: max_rounds,
                candidates: self.leader.candidates(),
            },
        }
    }

    /// Closes the stream **early** (transport failure): always
    /// [`Verdict::Undecided`], never an unconfirmed count.
    pub fn interrupt<S: TraceSink>(self, sink: &mut S) -> Verdict {
        sink.flush();
        Verdict::Undecided {
            rounds: self.round,
            candidates: self.leader.candidates(),
        }
    }
}

fn history_tree_guarded<S: TraceSink>(
    faulted: &FaultedExecution,
    max_rounds: u32,
    plan: &FaultPlan,
    sink: &mut S,
) -> Verdict {
    let mut session = GuardedHistoryTreeSession::new();
    for round in &faulted.execution.rounds {
        if let Some(v) = session.step(&faulted.execution.arena, round, plan, sink) {
            return v;
        }
    }
    session.finish(max_rounds, sink)
}

fn history_tree_unguarded<S: TraceSink>(
    faulted: &FaultedExecution,
    max_rounds: u32,
    plan: &FaultPlan,
    sink: &mut S,
) -> Verdict {
    let arena = &faulted.execution.arena;
    let mut leader = HistoryTreeLeader::new();
    for (r, round) in faulted.execution.rounds.iter().enumerate() {
        let r32 = r as u32;
        if plan.has_restart_at(r32) {
            // State loss: the unguarded leader starts over, oblivious.
            leader = HistoryTreeLeader::new();
        }
        match leader.ingest(arena, round) {
            // Typed error path: a decision-less horizon, never a panic.
            Err(_) => {
                sink.flush();
                return Verdict::Undecided {
                    rounds: r32 + 1,
                    candidates: None,
                };
            }
            Ok(step) => {
                let (lo, hi) = leader.candidates().unwrap_or((0, i64::MAX));
                let mut ev = RoundEvent::new(r32)
                    .deliveries(round.len() as u64)
                    .candidates(lo, hi)
                    .candidate_count((hi - lo + 1) as u64)
                    .state_size(leader.classes())
                    .spine(leader.spine_deliveries());
                if let Some(f) = plan.labels_at(r32) {
                    ev = ev.fault(&f);
                }
                sink.record(&ev);
                if let Some(count) = step {
                    sink.flush();
                    return Verdict::Correct {
                        count,
                        rounds: r32 + 1,
                    };
                }
            }
        }
    }
    sink.flush();
    Verdict::Undecided {
        rounds: max_rounds,
        candidates: leader.candidates(),
    }
}

/// Runs the exhaustive general-`k` counting rule (`k = 2` executions)
/// on `m` under `plan` and reduces the run to a [`Verdict`].
///
/// The faulted delivery stream is replayed through
/// [`GeneralSystem::feasible_populations_from_observations`] — the
/// leader enumerates every census consistent with the (possibly
/// perturbed) observations. Watchdogs mirror [`WatchedLeader`]:
/// delivery integrity, connectivity (round must deliver between `lo`
/// and `2·hi` messages for the previous candidate range `[lo, hi]`),
/// census conservation (the candidate set must stay non-empty and
/// nested) and kernel consistency (verified nullity must match the
/// closed-form prediction while within the verifier's column budget).
///
/// # Panics
///
/// Panics if `m.k() != 2` — the message-level fault simulator is
/// defined on `M(DBL)_2` executions.
pub fn general_k_verdict(
    m: &DblMultigraph,
    max_rounds: u32,
    max_solutions: usize,
    plan: &FaultPlan,
    watchdogs: bool,
) -> Verdict {
    general_k_verdict_with_sink(m, max_rounds, max_solutions, plan, watchdogs, &mut NullSink)
}

/// Verifier column budget of the general-`k` runner: identical to the
/// `VERIFY_MAX_COLUMNS` of
/// [`GeneralKCounting`](crate::algorithms::GeneralKCounting) so that
/// empty-plan traces carry the same verified/predicted `kernel_dim`
/// facets.
const GENERAL_K_VERIFY_MAX_COLUMNS: usize = 512;

/// Column budget for post-decision confirmation rounds of the
/// general-`k` runner (`3^6 = 729` unknowns): within it, confirmation
/// re-runs the full enumeration watchdogs; past it, only the
/// allocation-free connectivity watchdog keeps screening the tail.
const GENERAL_K_CONFIRM_MAX_COLUMNS: usize = 729;

/// Like [`general_k_verdict`], additionally emitting one [`RoundEvent`]
/// per observed round (up to the decision round) to `sink` with the
/// same facets as
/// [`GeneralKCounting::run_with_sink`](crate::algorithms::GeneralKCounting::run_with_sink),
/// plus `fault`/`violation` labels. Empty-plan traces are
/// byte-identical to the plain algorithm's.
///
/// # Panics
///
/// Panics if `m.k() != 2` (see [`general_k_verdict`]).
pub fn general_k_verdict_with_sink<S: TraceSink>(
    m: &DblMultigraph,
    max_rounds: u32,
    max_solutions: usize,
    plan: &FaultPlan,
    watchdogs: bool,
    sink: &mut S,
) -> Verdict {
    assert_eq!(m.k(), 2, "fault injection replays M(DBL)_2 executions");
    let Ok(sys) = GeneralSystem::new(2) else {
        return Verdict::Undecided {
            rounds: 0,
            candidates: None,
        };
    };
    let faulted = simulate_with_faults(m, max_rounds as usize, plan);
    let mut verifier = Some(sys.observation_kernel());
    let mut rhs: Vec<i64> = Vec::new();
    let mut prev_range: Option<(i64, i64)> = None;
    let mut decided: Option<(u64, u32)> = None;
    for (r, round) in faulted.execution.rounds.iter().enumerate() {
        let r32 = r as u32;
        if watchdogs && plan.has_restart_at(r32) {
            // The restarted leader re-observes from an empty system; its
            // first post-restart round then carries histories of the
            // wrong depth for level 0 — delivery integrity trips below.
            rhs.clear();
            prev_range = None;
            verifier = Some(sys.observation_kernel());
        }
        // Post-decision confirmation budget: re-enumerating the census
        // lattice recurses once per column (3^rounds), so confirmation
        // rounds past the budget keep only the allocation-free
        // connectivity watchdog — a drop or duplicate striking the
        // decision round still shifts the later delivery counts out of
        // the decided range `[c, 2c]`.
        let level = levels_of(&rhs);
        let within_confirm_budget = 3usize
            .checked_pow(level as u32 + 1)
            .is_some_and(|cols| cols <= GENERAL_K_CONFIRM_MAX_COLUMNS);
        if decided.is_some() && !within_confirm_budget {
            if watchdogs {
                let dcount = round.len() as i64;
                let out_of_range = prev_range
                    .is_some_and(|(lo, hi)| dcount < lo || dcount > hi.saturating_mul(2));
                if dcount == 0 || out_of_range {
                    return violation_verdict(ViolationKind::Connectivity, r32, plan, sink);
                }
            }
            continue;
        }
        // Assemble the level-r observation block (label-major, matching
        // `GeneralSystem::observations`) from the faulted deliveries.
        let Some(width) = 3usize.checked_pow(level as u32) else {
            break;
        };
        let mut al = vec![0i64; width];
        let mut bl = vec![0i64; width];
        let mut integrity_ok = true;
        for d in round {
            let len_ok = faulted.execution.arena.history_len(d.state) == level;
            let idx = faulted.execution.arena.checked_ternary_index(d.state);
            match (len_ok, idx, d.label) {
                (true, Some(i), 1) => al[i] += 1,
                (true, Some(i), 2) => bl[i] += 1,
                _ => integrity_ok = false,
            }
        }
        if !integrity_ok {
            if watchdogs {
                return violation_verdict(ViolationKind::DeliveryIntegrity, r32, plan, sink);
            }
            sink.flush();
            return Verdict::Undecided {
                rounds: r32 + 1,
                candidates: None,
            };
        }
        if watchdogs {
            let dcount = round.len() as i64;
            let out_of_range = prev_range
                .is_some_and(|(lo, hi)| dcount < lo || dcount > hi.saturating_mul(2));
            if dcount == 0 || out_of_range {
                return violation_verdict(ViolationKind::Connectivity, r32, plan, sink);
            }
        }
        rhs.extend(al);
        rhs.extend(bl);
        let rounds_seen = level + 1;
        let pops = match sys.feasible_populations_from_observations(&rhs, rounds_seen, max_solutions)
        {
            Ok(pops) => pops,
            // Enumeration budget or size limits — not a model violation.
            Err(_) => {
                sink.flush();
                return Verdict::Undecided {
                    rounds: r32 + 1,
                    candidates: prev_range,
                };
            }
        };
        verifier = verifier.filter(|_| {
            sys.q()
                .checked_pow(rounds_seen as u32)
                .is_some_and(|cols| cols <= GENERAL_K_VERIFY_MAX_COLUMNS)
        });
        let nullity = match verifier.as_mut() {
            Some(v) => v.push_round().map(|()| v.nullity()),
            None => sys.predicted_nullity(rounds_seen - 1),
        };
        if watchdogs {
            let predicted = sys.predicted_nullity(rounds_seen - 1).ok();
            if let (Ok(n), Some(p)) = (&nullity, predicted) {
                if *n != p {
                    return violation_verdict(ViolationKind::KernelConsistency, r32, plan, sink);
                }
            }
            let range = pops.first().zip(pops.last()).map(|(&lo, &hi)| (lo, hi));
            let conserved = match (range, prev_range) {
                (None, _) => false,
                (Some((_, hi)), _) if hi < 1 => false,
                (Some((lo, hi)), Some((plo, phi))) => lo >= plo && hi <= phi,
                (Some(_), None) => true,
            };
            if !conserved {
                return violation_verdict(ViolationKind::CensusConservation, r32, plan, sink);
            }
            prev_range = range;
        } else {
            prev_range = pops.first().zip(pops.last()).map(|(&lo, &hi)| (lo, hi));
        }
        if decided.is_none() {
            let mut ev = RoundEvent::new(r32).candidate_count(pops.len() as u64);
            if let (Some(&lo), Some(&hi)) = (pops.first(), pops.last()) {
                ev = ev.candidates(lo, hi);
            }
            if let Ok(nullity) = nullity {
                ev = ev.kernel_dim(nullity as u64);
            }
            if let Some(f) = plan.labels_at(r32) {
                ev = ev.fault(&f);
            }
            sink.record(&ev);
            if pops.len() == 1 {
                decided = Some((pops[0] as u64, r32 + 1));
                if !watchdogs {
                    // The unguarded rule outputs immediately; the guarded
                    // rule confirms through the horizon.
                    sink.flush();
                    let (count, rounds) = decided.unwrap_or((pops[0] as u64, r32 + 1));
                    return Verdict::Correct { count, rounds };
                }
            }
        }
    }
    sink.flush();
    match decided {
        Some((count, rounds)) => Verdict::Correct { count, rounds },
        None => Verdict::Undecided {
            rounds: max_rounds,
            candidates: prev_range,
        },
    }
}

/// Number of completed observation levels encoded in a label-major
/// `k = 2` rhs (`2·(3^0 + … + 3^{l-1})` entries after `l` levels).
fn levels_of(rhs: &[i64]) -> usize {
    let mut level = 0usize;
    let mut used = 0usize;
    loop {
        let Some(width) = 3usize.checked_pow(level as u32) else {
            return level;
        };
        let Some(next) = used.checked_add(2 * width) else {
            return level;
        };
        if next > rhs.len() {
            return level;
        }
        used = next;
        level += 1;
    }
}

fn violation_verdict<S: TraceSink>(
    kind: ViolationKind,
    round: u32,
    plan: &FaultPlan,
    sink: &mut S,
) -> Verdict {
    let mut ev = RoundEvent::new(round).violation(kind.label());
    if let Some(f) = plan.labels_at(round) {
        ev = ev.fault(&f);
    }
    sink.record(&ev);
    sink.flush();
    Verdict::ModelViolation { kind, round }
}

/// The first round in `0..window` whose faulted graph is disconnected —
/// the graph-layer 1-interval-connectivity watchdog. Scans a clone of
/// the network, so generator-backed networks replay identically when
/// the algorithm runs afterwards.
fn connectivity_prescan<N: DynamicNetwork + Clone>(
    net: &FaultyNetwork<N>,
    window: u32,
) -> Option<u32> {
    let mut probe = net.clone();
    check_interval_connectivity(&mut probe, window)
}

/// The first round in `0..window` whose faulted graph is not a
/// restricted `G(PD)_2` — the graph-layer *shape* watchdog for the
/// algorithms whose model is stronger than mere connectivity.
///
/// The layer assignment is fixed by round 0 (node 0 the leader, its
/// round-0 neighbours the relays, everyone else a leaf); each round
/// must then keep the leader touching exactly the relay layer, admit no
/// intra-layer or leader–leaf edges, and give every leaf at least one
/// relay. These conditions imply connectivity, but are checked
/// *separately* from [`connectivity_prescan`] so disconnections are
/// named [`ViolationKind::Connectivity`] and structural damage (e.g. an
/// edge drop that severs a relay from the leader while the graph stays
/// connected) is named [`ViolationKind::DeliveryIntegrity`].
fn pd2_shape_prescan<N: DynamicNetwork + Clone>(
    net: &FaultyNetwork<N>,
    window: u32,
) -> Option<u32> {
    let mut probe = net.clone();
    let order = probe.order();
    if order == 0 {
        return Some(0);
    }
    let mut is_relay = vec![false; order];
    for &v in probe.graph(0).neighbors(0) {
        is_relay[v] = true;
    }
    let relay_count = is_relay.iter().filter(|&&r| r).count();
    for r in 0..window {
        let g = probe.graph(r);
        if g.order() != order {
            return Some(r);
        }
        let leader_hood = g.neighbors(0);
        if leader_hood.len() != relay_count || leader_hood.iter().any(|&v| !is_relay[v]) {
            return Some(r);
        }
        let mut leaf_degree = vec![0usize; order];
        for (u, v) in g.edges() {
            match (u == 0 || is_relay[u], v == 0 || is_relay[v]) {
                // Upper-layer pairs: leader–relay is fine, relay–relay
                // and (already excluded above) leader–leaf are not.
                (true, true) => {
                    if u != 0 && v != 0 {
                        return Some(r);
                    }
                }
                (false, false) => return Some(r),
                (true, false) => {
                    if u == 0 {
                        return Some(r);
                    }
                    leaf_degree[v] += 1;
                }
                (false, true) => {
                    if v == 0 {
                        return Some(r);
                    }
                    leaf_degree[u] += 1;
                }
            }
        }
        for v in 1..order {
            if !is_relay[v] && leaf_degree[v] == 0 {
                return Some(r);
            }
        }
    }
    None
}

/// Runs `G(PD)_2` view counting on `net` under the graph-level
/// projection of `plan` ([`FaultPlan::network_plan`]) and reduces the
/// run to a [`Verdict`].
///
/// Watchdogs: a per-round connectivity prescan (any disconnected round
/// within the horizon fails closed as
/// [`ViolationKind::Connectivity`]), the `G(PD)_2` shape prescan
/// (structural damage that keeps the graph connected fails closed as
/// [`ViolationKind::DeliveryIntegrity`]), plus the decoder's own
/// structural checks — a [`Pd2ViewError::NotPd2`] rejection also
/// becomes [`ViolationKind::DeliveryIntegrity`]. Unguarded runs map
/// every error to [`Verdict::Undecided`] (the unguarded rule never
/// outputs a count it did not decide, but it also never names the
/// fault).
pub fn pd2_view_verdict<N: DynamicNetwork + Clone>(
    net: N,
    max_rounds: u32,
    max_solutions: usize,
    plan: &FaultPlan,
    watchdogs: bool,
) -> Verdict {
    let faulted = FaultyNetwork::new(net, plan.network_plan());
    if watchdogs {
        if let Some(round) = connectivity_prescan(&faulted, max_rounds) {
            return Verdict::ModelViolation {
                kind: ViolationKind::Connectivity,
                round,
            };
        }
        if let Some(round) = pd2_shape_prescan(&faulted, max_rounds) {
            return Verdict::ModelViolation {
                kind: ViolationKind::DeliveryIntegrity,
                round,
            };
        }
    }
    match run_pd2_view_counting(faulted, max_rounds, max_solutions) {
        Ok(out) => Verdict::Correct {
            count: out.count,
            rounds: out.rounds,
        },
        Err(Pd2ViewError::Undecided { rounds, candidates }) => Verdict::Undecided {
            rounds,
            candidates: candidates
                .first()
                .zip(candidates.last())
                .map(|(&lo, &hi)| (lo, hi)),
        },
        Err(Pd2ViewError::NotPd2 { .. }) if watchdogs => Verdict::ModelViolation {
            kind: ViolationKind::DeliveryIntegrity,
            round: 0,
        },
        Err(_) => Verdict::Undecided {
            rounds: max_rounds,
            candidates: None,
        },
    }
}

/// Runs the O(1) degree-oracle algorithm on `net` under the graph-level
/// projection of `plan` and reduces the run to a [`Verdict`].
///
/// Watchdogs: a 3-round connectivity prescan (the algorithm's whole
/// horizon) plus a 3-round **shape prescan** — the algorithm's model is
/// the restricted `G(PD)_2`, and an edge drop can leave the graph
/// connected while severing a relay from the leader, silently shrinking
/// the telescoped sum to a smaller integer. A round that is not a
/// restricted `G(PD)_2` (with the layer assignment fixed by round 0)
/// fails closed as [`ViolationKind::DeliveryIntegrity`]. The protocol's
/// own fractional-sum withholding (the leader refuses to output when
/// the telescoped shares are not an integer) maps to
/// [`Verdict::Undecided`] in both arms.
pub fn degree_oracle_verdict<N: DynamicNetwork + Clone>(
    net: N,
    plan: &FaultPlan,
    watchdogs: bool,
) -> Verdict {
    let faulted = FaultyNetwork::new(net, plan.network_plan());
    if watchdogs {
        if let Some(round) = connectivity_prescan(&faulted, 3) {
            return Verdict::ModelViolation {
                kind: ViolationKind::Connectivity,
                round,
            };
        }
        if let Some(round) = pd2_shape_prescan(&faulted, 3) {
            return Verdict::ModelViolation {
                kind: ViolationKind::DeliveryIntegrity,
                round,
            };
        }
    }
    match run_degree_oracle(faulted) {
        Ok(out) => Verdict::Correct {
            count: out.count,
            rounds: out.rounds,
        },
        Err(CountingError::Undecided { rounds, candidates }) => {
            Verdict::Undecided { rounds, candidates }
        }
        Err(_) => Verdict::Undecided {
            rounds: 3,
            candidates: None,
        },
    }
}

/// Window over which the mass-drain / push-sum leaders require their
/// trailing statistic to be flat before claiming a count.
const STABLE_WINDOW: usize = 8;

/// Runs the mass-drain baseline on `net` under the graph-level
/// projection of `plan` and reduces the run to a [`Verdict`].
///
/// The leader's claim is computed *without ground truth*: when its
/// collected mass has been flat (change below `epsilon`) over the
/// trailing [`STABLE_WINDOW`] rounds it claims
/// `round(collected) + 1`. Watchdogs: the connectivity prescan plus
/// the protocol's own degree-bound detector
/// ([`MassDrainRun::bound_violated`](crate::baselines::MassDrainRun::bound_violated)),
/// which maps to [`ViolationKind::DeliveryIntegrity`]. Unguarded runs
/// ignore both and claim whatever the drained mass suggests — a
/// crashed node's stranded mass yields a silently wrong count.
pub fn mass_drain_verdict<N: DynamicNetwork + Clone>(
    net: N,
    degree_bound: u32,
    max_rounds: u32,
    epsilon: f64,
    plan: &FaultPlan,
    watchdogs: bool,
) -> Verdict {
    let faulted = FaultyNetwork::new(net, plan.network_plan());
    if watchdogs {
        if let Some(round) = connectivity_prescan(&faulted, max_rounds) {
            return Verdict::ModelViolation {
                kind: ViolationKind::Connectivity,
                round,
            };
        }
    }
    let run = run_mass_drain(faulted, degree_bound, max_rounds, epsilon);
    if watchdogs && run.bound_violated {
        return Verdict::ModelViolation {
            kind: ViolationKind::DeliveryIntegrity,
            round: 0,
        };
    }
    let n = run.collected.len();
    let stable = n > STABLE_WINDOW
        && run
            .collected
            .last()
            .zip(run.collected.get(n - 1 - STABLE_WINDOW))
            .is_some_and(|(&last, &earlier)| (last - earlier).abs() < epsilon);
    match run.collected.last() {
        Some(&c) if stable && c >= 0.0 => {
            // First round at which the leader's collected mass reached
            // its final plateau — the leader-observable decision round.
            let rounds = run
                .collected
                .iter()
                .position(|&v| (c - v).abs() < epsilon)
                .map(|r| r as u32 + 1)
                .unwrap_or(max_rounds);
            Verdict::Correct {
                count: libm_round(c) + 1,
                rounds,
            }
        }
        _ => Verdict::Undecided {
            rounds: max_rounds,
            candidates: None,
        },
    }
}

/// `f64::round` clamped into `u64` (negative and non-finite inputs
/// collapse to 0 — the caller treats any such claim as just another
/// wrong count for the envelope statistics).
fn libm_round(x: f64) -> u64 {
    if x.is_finite() && x > 0.0 {
        x.round() as u64
    } else {
        0
    }
}

/// Runs the push-sum baseline on `net` under the graph-level projection
/// of `plan` and reduces the run to a [`Verdict`].
///
/// Push-sum only estimates; the leader claims a count when its estimate
/// has stabilized (relative change below `tolerance` across the
/// trailing [`STABLE_WINDOW`] rounds) *and* sits within `tolerance` of
/// an integer — on in-model networks the claim then equals the true
/// size. Watchdogs: the connectivity prescan (mass stranded on a
/// crashed or disconnected node shifts the limit to a wrong integer,
/// which the unguarded arm happily reports).
pub fn pushsum_verdict<N: DynamicNetwork + Clone>(
    net: N,
    max_rounds: u32,
    tolerance: f64,
    plan: &FaultPlan,
    watchdogs: bool,
) -> Verdict {
    let faulted = FaultyNetwork::new(net, plan.network_plan());
    if watchdogs {
        if let Some(round) = connectivity_prescan(&faulted, max_rounds) {
            return Verdict::ModelViolation {
                kind: ViolationKind::Connectivity,
                round,
            };
        }
    }
    let run = run_pushsum(faulted, max_rounds);
    let n = run.estimates.len();
    let last = run.estimates.last().copied().unwrap_or(f64::NAN);
    let stable = n > STABLE_WINDOW
        && run.estimates[n - 1 - STABLE_WINDOW..]
            .iter()
            .all(|&e| e.is_finite() && (e - last).abs() <= tolerance * last.abs().max(1.0));
    let claim = libm_round(last);
    let near_integer = last.is_finite() && (last - claim as f64).abs() <= tolerance * (claim.max(1)) as f64;
    if stable && near_integer && claim >= 1 {
        Verdict::Correct {
            count: claim,
            rounds: max_rounds,
        }
    } else {
        Verdict::Undecided {
            rounds: max_rounds,
            candidates: None,
        }
    }
}

/// Runs the exhaustive enumeration baseline on `net` under the
/// graph-level projection of `plan` and reduces the run to a
/// [`Verdict`].
///
/// Watchdogs: the connectivity prescan, an empty candidate set at any
/// round (no 1-interval-connected network of any admissible size could
/// have produced the view — [`ViolationKind::CensusConservation`]) and
/// non-nested candidate sets (consistent sizes can only shrink as the
/// view grows).
///
/// # Panics
///
/// Panics if `max_size > 6` (inherited from
/// [`run_enumeration_counting`]).
pub fn enumeration_verdict<N: DynamicNetwork + Clone>(
    net: N,
    max_rounds: u32,
    max_size: usize,
    plan: &FaultPlan,
    watchdogs: bool,
) -> Verdict {
    let faulted = FaultyNetwork::new(net, plan.network_plan());
    if watchdogs {
        if let Some(round) = connectivity_prescan(&faulted, max_rounds) {
            return Verdict::ModelViolation {
                kind: ViolationKind::Connectivity,
                round,
            };
        }
    }
    let out = run_enumeration_counting(faulted, max_rounds, max_size);
    if watchdogs {
        let mut prev: Option<&Vec<usize>> = None;
        for (r, cands) in out.candidates_per_round.iter().enumerate() {
            let nested = prev.is_none_or(|p| cands.iter().all(|c| p.contains(c)));
            if cands.is_empty() || !nested {
                return Verdict::ModelViolation {
                    kind: ViolationKind::CensusConservation,
                    round: r as u32,
                };
            }
            prev = Some(cands);
        }
    }
    match out.decision_round {
        Some(rounds) => {
            let count = out
                .candidates_per_round
                .get(rounds as usize - 1)
                .and_then(|c| c.first())
                .copied()
                .unwrap_or(0) as u64;
            Verdict::Correct { count, rounds }
        }
        None => Verdict::Undecided {
            rounds: max_rounds,
            candidates: out.candidates_per_round.last().and_then(|c| {
                c.first()
                    .zip(c.last())
                    .map(|(&lo, &hi)| (lo as i64, hi as i64))
            }),
        },
    }
}

/// The counting algorithms exposed as **search oracles**: the
/// coverage-guided adversary search (`exp_search`) mutates
/// [`AdversarySchedule`]s and judges every mutant by feeding it to one
/// of these through [`schedule_verdict`]. Only the five deterministic
/// exact-counting rules are searchable — the float-valued baselines
/// (mass-drain, push-sum) would put `f64`s in fitness comparisons and
/// break the byte-identical-archive contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchAlgorithm {
    /// The paper's kernel counting rule on `M(DBL)_2` executions
    /// ([`kernel_verdict`]).
    Kernel,
    /// The exhaustive general-`k` rule ([`general_k_verdict`]).
    GeneralK,
    /// `G(PD)_2` view counting on the transformed network
    /// ([`pd2_view_verdict`]).
    Pd2View,
    /// The O(1) degree oracle on the transformed network
    /// ([`degree_oracle_verdict`]).
    DegreeOracle,
    /// The history-tree alternating-spine-sum rule on `M(DBL)_2`
    /// executions ([`history_tree_verdict`]). Appended after the
    /// original four so archived fitness-class bits keep their
    /// positions.
    HistoryTree,
}

impl SearchAlgorithm {
    /// Every searchable oracle, in the canonical (archive) order.
    pub const ALL: [SearchAlgorithm; 5] = [
        SearchAlgorithm::Kernel,
        SearchAlgorithm::GeneralK,
        SearchAlgorithm::Pd2View,
        SearchAlgorithm::DegreeOracle,
        SearchAlgorithm::HistoryTree,
    ];

    /// Stable name used in coverage keys, archive files and cell ids.
    pub fn name(self) -> &'static str {
        match self {
            SearchAlgorithm::Kernel => "kernel",
            SearchAlgorithm::GeneralK => "general-k",
            SearchAlgorithm::Pd2View => "pd2-views",
            SearchAlgorithm::DegreeOracle => "degree-oracle",
            SearchAlgorithm::HistoryTree => "history-tree",
        }
    }

    /// Inverse of [`SearchAlgorithm::name`].
    pub fn from_name(name: &str) -> Option<SearchAlgorithm> {
        SearchAlgorithm::ALL.into_iter().find(|a| a.name() == name)
    }
}

/// Candidate-set budget handed to [`general_k_verdict`] by
/// [`schedule_verdict`] — matches the `exp_faults` E22 grid so archived
/// verdicts replay against the same truncation behavior.
pub const SEARCH_GENERAL_K_BUDGET: usize = 10_000;

/// Candidate-set budget handed to [`pd2_view_verdict`] by
/// [`schedule_verdict`] — matches the `exp_faults` E22 grid.
pub const SEARCH_PD2_BUDGET: usize = 50_000;

/// Judges one [`AdversarySchedule`] with oracle `alg` — the single
/// entry point the search loop, the archive replay tests and the
/// corpus-seeding code all share, so a schedule's verdict means the
/// same thing everywhere.
///
/// The multigraph oracles ([`SearchAlgorithm::Kernel`],
/// [`SearchAlgorithm::GeneralK`]) replay the schedule's `M(DBL)_2`
/// execution directly under its [`FaultPlan`]. The graph oracles
/// ([`SearchAlgorithm::Pd2View`], [`SearchAlgorithm::DegreeOracle`])
/// run on the Lemma 1 transform of the schedule's network
/// ([`anonet_multigraph::transform::to_pd2`]) under the plan's
/// graph-level projection, exactly as in the E22 grid; the transform is
/// built over `max(horizon, 4)` rounds so the oracle's fixed 3-round
/// window always exists.
///
/// A schedule whose rows no longer assemble into a [`DblMultigraph`] or
/// transform into a `G(PD)_2` (impossible for
/// [validated](AdversarySchedule::validate) schedules, kept total for
/// robustness) maps to `Undecided { rounds: 0 }` — the worst possible
/// fitness, so malformed genomes die out instead of crashing a
/// campaign.
pub fn schedule_verdict(
    alg: SearchAlgorithm,
    schedule: &AdversarySchedule,
    watchdogs: bool,
) -> Verdict {
    let dead = Verdict::Undecided {
        rounds: 0,
        candidates: None,
    };
    let Ok(m) = schedule.multigraph() else {
        return dead;
    };
    let horizon = schedule.horizon();
    match alg {
        SearchAlgorithm::Kernel => kernel_verdict(&m, horizon, schedule.plan(), watchdogs),
        SearchAlgorithm::GeneralK => general_k_verdict(
            &m,
            horizon,
            SEARCH_GENERAL_K_BUDGET,
            schedule.plan(),
            watchdogs,
        ),
        SearchAlgorithm::Pd2View => {
            let Ok(net) = transform::to_pd2(&m, (horizon as usize).max(4)) else {
                return dead;
            };
            pd2_view_verdict(net, horizon, SEARCH_PD2_BUDGET, schedule.plan(), watchdogs)
        }
        SearchAlgorithm::DegreeOracle => {
            let Ok(net) = transform::to_pd2(&m, (horizon as usize).max(4)) else {
                return dead;
            };
            degree_oracle_verdict(net, schedule.plan(), watchdogs)
        }
        SearchAlgorithm::HistoryTree => {
            history_tree_verdict(&m, horizon, schedule.plan(), watchdogs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_multigraph::adversary::TwinBuilder;
    use anonet_multigraph::transform;

    #[test]
    fn kernel_verdict_counts_clean_runs_in_both_arms() {
        for n in [1u64, 4, 13, 40] {
            let pair = TwinBuilder::new().build(n).unwrap();
            let horizon = pair.horizon + 4;
            let plan = FaultPlan::new();
            for watchdogs in [false, true] {
                let v = kernel_verdict(&pair.smaller, horizon, &plan, watchdogs);
                assert_eq!(v.count(), Some(n), "n={n} watchdogs={watchdogs}");
            }
        }
    }

    #[test]
    fn kernel_watchdogs_catch_what_the_unguarded_leader_miscounts() {
        // The drop pattern from the simulate tests: a quarter of round
        // 1's deliveries vanish. The unguarded leader undercounts (or
        // stalls); the guarded leader names a violation.
        let pair = TwinBuilder::new().build(13).unwrap();
        let plan = FaultPlan::new().drop_deliveries(1, 4, 0);
        let guarded = kernel_verdict(&pair.smaller, 8, &plan, true);
        assert!(matches!(guarded, Verdict::ModelViolation { .. }), "{guarded}");
        let unguarded = kernel_verdict(&pair.smaller, 8, &plan, false);
        if let Some(count) = unguarded.count() {
            assert_ne!(count, 13, "any unguarded decision is wrong — silently");
        }
    }

    #[test]
    fn general_k_verdict_matches_kernel_on_clean_runs() {
        for n in [1u64, 3, 4, 9] {
            let pair = TwinBuilder::new().build(n).unwrap();
            let plan = FaultPlan::new();
            let gk = general_k_verdict(&pair.smaller, 8, 5_000_000, &plan, true);
            let kc = kernel_verdict(&pair.smaller, 8, &plan, true);
            assert_eq!(gk.count(), Some(n), "n={n}");
            assert_eq!(gk, kc, "both rules are optimal, n={n}");
        }
    }

    #[test]
    fn general_k_watchdogs_fail_closed_on_duplicates() {
        let pair = TwinBuilder::new().build(4).unwrap();
        let plan = FaultPlan::new().duplicate_deliveries(0, 2, 0);
        let guarded = general_k_verdict(&pair.smaller, 6, 2_000_000, &plan, true);
        assert!(guarded.is_fail_closed(), "{guarded}");
    }

    #[test]
    fn pd2_view_verdict_counts_clean_transforms() {
        let pair = TwinBuilder::new().build(4).unwrap();
        let net = transform::to_pd2(&pair.smaller, 8).unwrap();
        let v = pd2_view_verdict(net, 8, 2_000_000, &FaultPlan::new(), true);
        match v {
            Verdict::Correct { count, .. } => assert_eq!(count, 4 + 3),
            Verdict::Undecided { candidates, .. } => {
                let (lo, hi) = candidates.unwrap();
                assert!(lo <= 4 && 4 <= hi);
            }
            other => panic!("clean run must not fail closed: {other}"),
        }
    }

    #[test]
    fn pd2_view_verdict_fails_closed_on_disconnect() {
        let pair = TwinBuilder::new().build(4).unwrap();
        let net = transform::to_pd2(&pair.smaller, 8).unwrap();
        let plan = FaultPlan::new().disconnect(2);
        let v = pd2_view_verdict(net, 8, 2_000_000, &plan, true);
        assert_eq!(
            v,
            Verdict::ModelViolation {
                kind: ViolationKind::Connectivity,
                round: 2
            }
        );
    }

    #[test]
    fn degree_oracle_verdict_is_constant_time_and_guarded() {
        let pair = TwinBuilder::new().build(13).unwrap();
        let net = transform::to_pd2(&pair.smaller, 4).unwrap();
        let clean = degree_oracle_verdict(net.clone(), &FaultPlan::new(), true);
        assert_eq!(clean.count(), Some(13 + 3));
        let crashed = degree_oracle_verdict(net, &FaultPlan::new().crash_nodes(1, 2), true);
        assert!(crashed.is_fail_closed(), "{crashed}");
    }

    #[test]
    fn mass_drain_verdict_claims_without_ground_truth() {
        let net = anonet_graph::GraphSequence::constant(anonet_graph::Graph::star(8).unwrap());
        let v = mass_drain_verdict(net, 7, 800, 0.01, &FaultPlan::new(), true);
        assert_eq!(v.count(), Some(8), "{v}");
    }

    #[test]
    fn mass_drain_crash_is_silently_wrong_only_when_unguarded() {
        let mk = || anonet_graph::GraphSequence::constant(anonet_graph::Graph::star(8).unwrap());
        let plan = FaultPlan::new().crash_nodes(1, 2);
        let guarded = mass_drain_verdict(mk(), 7, 800, 0.01, &plan, true);
        assert!(guarded.is_fail_closed(), "{guarded}");
        let unguarded = mass_drain_verdict(mk(), 7, 800, 0.01, &plan, false);
        if let Some(count) = unguarded.count() {
            assert_ne!(count, 8, "stranded mass undercounts silently");
        }
    }

    #[test]
    fn pushsum_verdict_converges_cleanly_and_fails_closed_on_crash() {
        let clean = pushsum_verdict(
            anonet_graph::GraphSequence::constant(anonet_graph::Graph::complete(8)),
            200,
            1e-6,
            &FaultPlan::new(),
            true,
        );
        assert_eq!(clean.count(), Some(8), "{clean}");
        // A star mixes mass disproportionately, so a crashed leaf
        // strands a non-proportional (s, w) share and the surviving
        // estimate drifts off the true size. (On a complete graph one
        // round of mixing makes every node's mass proportional and a
        // crash leaves the limit at exactly n — push-sum is naturally
        // robust there.)
        let mk = || anonet_graph::GraphSequence::constant(anonet_graph::Graph::star(8).unwrap());
        let plan = FaultPlan::new().crash_nodes(1, 2);
        let guarded = pushsum_verdict(mk(), 200, 1e-6, &plan, true);
        assert!(guarded.is_fail_closed(), "{guarded}");
        let unguarded = pushsum_verdict(mk(), 200, 1e-6, &plan, false);
        assert_ne!(unguarded.count(), Some(8), "lost mass shifts the limit");
    }

    #[test]
    fn enumeration_verdict_counts_tiny_networks() {
        let net = anonet_graph::GraphSequence::constant(anonet_graph::Graph::star(3).unwrap());
        let v = enumeration_verdict(net, 3, 4, &FaultPlan::new(), true);
        assert_eq!(v.count(), Some(3), "{v}");
    }

    #[test]
    fn enumeration_verdict_fails_closed_on_disconnect() {
        let net = anonet_graph::GraphSequence::constant(anonet_graph::Graph::star(3).unwrap());
        let plan = FaultPlan::new().disconnect(1);
        let v = enumeration_verdict(net, 3, 4, &plan, true);
        assert!(v.is_fail_closed(), "{v}");
    }

    #[test]
    fn schedule_verdict_agrees_with_the_direct_runners() {
        use anonet_multigraph::mutate::AdversarySchedule;
        let pair = TwinBuilder::new().build(4).unwrap();
        let horizon = pair.horizon + 3;
        let schedule = AdversarySchedule::from_multigraph(&pair.smaller, horizon).unwrap();
        let m = schedule.multigraph().unwrap();
        assert_eq!(
            schedule_verdict(SearchAlgorithm::Kernel, &schedule, true),
            kernel_verdict(&m, horizon, schedule.plan(), true),
        );
        assert_eq!(
            schedule_verdict(SearchAlgorithm::GeneralK, &schedule, true),
            general_k_verdict(&m, horizon, SEARCH_GENERAL_K_BUDGET, schedule.plan(), true),
        );
        let net = transform::to_pd2(&m, (horizon as usize).max(4)).unwrap();
        assert_eq!(
            schedule_verdict(SearchAlgorithm::Pd2View, &schedule, true),
            pd2_view_verdict(net.clone(), horizon, SEARCH_PD2_BUDGET, schedule.plan(), true),
        );
        assert_eq!(
            schedule_verdict(SearchAlgorithm::DegreeOracle, &schedule, true),
            degree_oracle_verdict(net, schedule.plan(), true),
        );
    }

    #[test]
    fn search_algorithm_names_round_trip() {
        for alg in SearchAlgorithm::ALL {
            assert_eq!(SearchAlgorithm::from_name(alg.name()), Some(alg));
        }
        assert_eq!(SearchAlgorithm::from_name("push-sum"), None);
    }

    #[test]
    fn restart_resets_the_unguarded_leader_without_detection() {
        // The unguarded leader restarts from scratch and re-observes a
        // world whose histories are deeper than it thinks — ingestion
        // errors out (PR 1 would have panicked) and the run stays
        // decision-less rather than wrong.
        let pair = TwinBuilder::new().build(13).unwrap();
        let plan = FaultPlan::new().leader_restart(2);
        let unguarded = kernel_verdict(&pair.smaller, 6, &plan, false);
        assert!(unguarded.count().is_none(), "{unguarded}");
        let guarded = kernel_verdict(&pair.smaller, 6, &plan, true);
        assert_eq!(
            guarded,
            Verdict::ModelViolation {
                kind: ViolationKind::DeliveryIntegrity,
                round: 2
            }
        );
    }
}
