//! History-tree counting in `M(DBL)_2`: the linear-round alternating
//! spine-sum algorithm.
//!
//! Di Luna–Viglietta 2022 ("Computing in Anonymous Dynamic Networks Is
//! Linear") organizes the leader's view into a *history tree* and counts
//! by combinatorics on that tree instead of solving the `3^r`-column
//! observation system. This module wraps the incremental
//! [`HistoryTreeLeader`] of `anonet-multigraph` — the tree is exactly the
//! [`HistoryArena`](anonet_multigraph::HistoryArena) hash-cons the
//! simulator already maintains, so tree nodes are interned 4-byte
//! handles — in the same `run`/`run_traced`/`run_with_sink` surface as
//! [`KernelCounting`](super::KernelCounting), with the same typed
//! [`CountingOutcome`]/[`CountingError`] results.
//!
//! The termination rule is the linear-round stabilization rule on the
//! tree's *spine* (the all-`{1,2}` branch): the alternating sum of
//! per-round spine deliveries equals the population exactly at the first
//! round whose spine is silent. See `anonet_multigraph::history_tree`
//! for the derivation, and for the honest limitation: executions that
//! keep the spine alive forever (static all-`{1,2}` networks, odd-depth
//! twins) end in [`CountingError::Undecided`] rather than a decision —
//! the kernel algorithm decides on every `M(DBL)_2` execution, and the
//! `exp_crossover` benchmark measures what that generality costs.

use super::{CountingError, CountingOutcome, CountingTrace};
use anonet_multigraph::history_tree::HistoryTreeLeader;
use anonet_multigraph::simulate::simulate_threaded;
use anonet_multigraph::DblMultigraph;
use anonet_trace::{NullSink, RoundEvent, TraceSink};

/// The history-tree counting algorithm.
///
/// Observing round `r` costs `O(deliveries of round r)` — each delivery
/// is classified on/off the spine with two O(1) arena lookups — so the
/// leader's per-round work is linear where the kernel solver's grows
/// with the `3^r` column count. The price is generality: the truncated
/// spine-death rule decides only when the spine empties.
///
/// # Examples
///
/// ```
/// use anonet_core::algorithms::HistoryTreeCounting;
/// use anonet_multigraph::adversary::TwinBuilder;
///
/// // Even-depth worst-case twins: the spine dies at horizon + 1 and the
/// // leader decides at horizon + 2 — the kernel algorithm's own bound.
/// let pair = TwinBuilder::new().build(40)?;
/// let outcome = HistoryTreeCounting::new().run(&pair.smaller, 16)?;
/// assert_eq!(outcome.count, 40);
/// assert_eq!(outcome.rounds, pair.horizon + 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct HistoryTreeCounting {
    threads: usize,
}

impl Default for HistoryTreeCounting {
    fn default() -> HistoryTreeCounting {
        HistoryTreeCounting::new()
    }
}

impl HistoryTreeCounting {
    /// Creates the algorithm (serial round simulation).
    pub fn new() -> HistoryTreeCounting {
        HistoryTreeCounting { threads: 1 }
    }

    /// Simulates rounds on `threads` worker threads. The emitted rounds
    /// are byte-identical to the serial ones (the SoA engine's
    /// determinism guarantee), so outcomes and traces do not depend on
    /// the thread count.
    pub fn with_threads(mut self, threads: usize) -> HistoryTreeCounting {
        self.threads = threads.max(1);
        self
    }

    /// Runs the leader against the multigraph, observing one round at a
    /// time, and outputs at the first round whose spine is silent.
    ///
    /// # Errors
    ///
    /// Returns [`CountingError::Undecided`] if `max_rounds` elapse with
    /// the spine alive (the candidate interval of the error is the
    /// running intersection of the per-round spine bounds) and
    /// [`CountingError::BadObservations`] for non-`k=2` multigraphs or
    /// self-contradictory spine sums.
    pub fn run(
        &self,
        m: &DblMultigraph,
        max_rounds: u32,
    ) -> Result<CountingOutcome, CountingError> {
        self.run_traced(m, max_rounds).map(|(o, _)| o)
    }

    /// Like [`HistoryTreeCounting::run`], also returning the per-round
    /// feasible population intervals (the leader's shrinking candidate
    /// set).
    ///
    /// # Errors
    ///
    /// Same as [`HistoryTreeCounting::run`].
    pub fn run_traced(
        &self,
        m: &DblMultigraph,
        max_rounds: u32,
    ) -> Result<(CountingOutcome, CountingTrace), CountingError> {
        self.run_with_sink(m, max_rounds, &mut NullSink)
    }

    /// Like [`HistoryTreeCounting::run_traced`], additionally emitting
    /// one [`RoundEvent`] per observed round to `sink`: the delivery
    /// count (`deliveries`), the feasible population interval
    /// (`candidate_lo`/`candidate_hi`) with its width
    /// (`candidate_count`), the cumulative number of distinct
    /// `(label, history)` delivery classes — the materialized
    /// history-tree frontier — as `state_size`, and the round's spine
    /// delivery count as `spine` (the decision fires the round this
    /// drops to zero).
    ///
    /// # Errors
    ///
    /// Same as [`HistoryTreeCounting::run`].
    pub fn run_with_sink<S: TraceSink>(
        &self,
        m: &DblMultigraph,
        max_rounds: u32,
        sink: &mut S,
    ) -> Result<(CountingOutcome, CountingTrace), CountingError> {
        if m.k() != 2 {
            return Err(CountingError::BadObservations(format!(
                "history-tree counting requires k = 2, got k = {}",
                m.k()
            )));
        }
        let mut trace = CountingTrace {
            candidate_ranges: Vec::new(),
        };
        let exec = simulate_threaded(m, max_rounds as usize, self.threads);
        let mut leader = HistoryTreeLeader::new();
        for rounds in 1..=max_rounds {
            let round = &exec.rounds[rounds as usize - 1];
            let step = leader
                .ingest(&exec.arena, round)
                .map_err(|e| CountingError::BadObservations(e.to_string()))?;
            let (lo, hi) = leader
                .candidates()
                .expect("interval exists after a successful ingest");
            trace.candidate_ranges.push((lo, hi));
            let event = RoundEvent::new(rounds - 1)
                .deliveries(round.len() as u64)
                .candidates(lo, hi)
                .candidate_count((hi - lo + 1) as u64)
                .state_size(leader.classes())
                .spine(leader.spine_deliveries());
            sink.record(&event);
            if let Some(count) = step {
                sink.flush();
                return Ok((CountingOutcome { count, rounds }, trace));
            }
        }
        sink.flush();
        Err(CountingError::Undecided {
            rounds: max_rounds,
            candidates: leader.candidates(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_multigraph::adversary::TwinBuilder;
    use anonet_multigraph::{Census, LabelSet};

    #[test]
    fn counts_even_depth_twins_at_the_kernel_bound() {
        let b = TwinBuilder::new();
        for n in [4u64, 40, 364] {
            let pair = b.build(n).unwrap();
            let outcome = HistoryTreeCounting::new().run(&pair.smaller, 32).unwrap();
            assert_eq!(outcome.count, n, "exact count for n={n}");
            assert_eq!(
                outcome.rounds,
                crate::bounds::counting_rounds_lower_bound(n),
                "ties the kernel bound on even-depth twins for n={n}"
            );
        }
    }

    #[test]
    fn never_decides_while_the_spine_is_alive() {
        let pair = TwinBuilder::new().build(40).unwrap();
        let err = HistoryTreeCounting::new()
            .run(&pair.smaller, pair.horizon + 1)
            .unwrap_err();
        match err {
            CountingError::Undecided { rounds, candidates } => {
                assert_eq!(rounds, pair.horizon + 1);
                let (lo, hi) = candidates.unwrap();
                assert!(lo <= 40 && 40 <= hi, "truth in [{lo}, {hi}]");
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn static_all_l12_networks_stay_undecided() {
        // The documented limitation of the truncated spine-death rule:
        // a static clique delivering {1,2} forever never kills the
        // spine; the leader reports Undecided with the truth feasible.
        let m = Census::from_counts(vec![0, 0, 4])
            .unwrap()
            .realize()
            .unwrap();
        let err = HistoryTreeCounting::new().run(&m, 12).unwrap_err();
        match err {
            CountingError::Undecided { rounds, candidates } => {
                assert_eq!(rounds, 12);
                let (lo, hi) = candidates.unwrap();
                assert!(lo <= 4 && 4 <= hi);
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn trace_ranges_shrink_and_contain_truth() {
        let pair = TwinBuilder::new().build(40).unwrap();
        let (outcome, trace) = HistoryTreeCounting::new()
            .run_traced(&pair.smaller, 32)
            .unwrap();
        assert_eq!(outcome.count, 40);
        let mut prev: Option<(i64, i64)> = None;
        for &(lo, hi) in &trace.candidate_ranges {
            assert!((lo..=hi).contains(&40), "truth always feasible");
            if let Some((plo, phi)) = prev {
                assert!(lo >= plo && hi <= phi, "candidate set shrinks");
            }
            prev = Some((lo, hi));
        }
        assert_eq!(*trace.candidate_ranges.last().unwrap(), (40, 40));
    }

    #[test]
    fn traced_events_carry_the_spine_facet_and_threads_do_not_perturb() {
        use anonet_trace::MemorySink;
        let pair = TwinBuilder::new().build(40).unwrap();
        let mut serial_sink = MemorySink::new();
        let serial = HistoryTreeCounting::new()
            .run_with_sink(&pair.smaller, 32, &mut serial_sink)
            .unwrap();
        let mut threaded_sink = MemorySink::new();
        let threaded = HistoryTreeCounting::new()
            .with_threads(4)
            .run_with_sink(&pair.smaller, 32, &mut threaded_sink)
            .unwrap();
        assert_eq!(serial, threaded, "outcome and trace are thread-independent");
        assert_eq!(serial_sink.events(), threaded_sink.events());
        let events = serial_sink.events();
        assert!(events.iter().all(|ev| ev.spine.is_some()));
        // The decision round is exactly the round the spine died.
        assert_eq!(events.last().unwrap().spine, Some(0));
        assert!(events[..events.len() - 1]
            .iter()
            .all(|ev| ev.spine.unwrap() > 0));
    }

    #[test]
    fn easy_instances_decide_as_soon_as_the_spine_dies() {
        let m = Census::from_counts(vec![3, 2, 0])
            .unwrap()
            .realize()
            .unwrap();
        let outcome = HistoryTreeCounting::new().run(&m, 8).unwrap();
        assert_eq!(outcome.count, 5);
        assert_eq!(outcome.rounds, 2);
    }

    #[test]
    fn rejects_k3() {
        let m = anonet_multigraph::DblMultigraph::new(
            3,
            vec![vec![LabelSet::from_labels(&[3], 3).unwrap()]],
        )
        .unwrap();
        assert!(matches!(
            HistoryTreeCounting::new().run(&m, 4),
            Err(CountingError::BadObservations(_))
        ));
    }
}
