//! Beacon layering: anonymous nodes learn their persistent distance.
//!
//! In a persistent-distance network (`G(PD)_h`), a node's leader-distance
//! never changes, so it can be *learned once and kept*: the leader floods a
//! beacon, and the round in which a node first receives it is exactly its
//! persistent distance. This is the primitive behind the Discussion's
//! degree-oracle algorithm (relays must know they are `V_1`) and a
//! reusable building block for any layered protocol on `G(PD)_h`.

use anonet_graph::DynamicNetwork;
use anonet_netsim::{Process, RecvContext, Role, SendContext, Simulator};
use anonet_trace::{NullSink, TraceSink};

/// One node's state in the layering protocol.
#[derive(Debug, Clone)]
pub struct LayeringProcess {
    role: Role,
    layer: Option<u32>,
}

impl LayeringProcess {
    /// A population of `n` processes (node 0 the leader, layer 0).
    pub fn population(n: usize) -> Vec<LayeringProcess> {
        (0..n)
            .map(|v| LayeringProcess {
                role: if v == 0 {
                    Role::Leader
                } else {
                    Role::Anonymous
                },
                layer: (v == 0).then_some(0),
            })
            .collect()
    }

    /// The learned layer (persistent distance), if known yet.
    pub fn layer(&self) -> Option<u32> {
        self.layer
    }
}

impl Process for LayeringProcess {
    /// The beacon carries the hop distance travelled so far.
    type Msg = Option<u32>;

    fn send(&mut self, _ctx: &SendContext) -> Option<u32> {
        self.layer
    }

    fn receive(&mut self, ctx: RecvContext<'_, Option<u32>>) {
        if self.role == Role::Leader || self.layer.is_some() {
            return;
        }
        if let Some(best) = ctx.inbox.iter().flatten().min() {
            self.layer = Some(best + 1);
        }
    }
}

/// Runs the layering protocol for `rounds` rounds and returns each node's
/// learned layer (`None` if the beacon never arrived).
pub fn learn_layers<N: DynamicNetwork>(net: N, rounds: u32) -> Vec<Option<u32>> {
    learn_layers_with_sink(net, rounds, &mut NullSink)
}

/// Like [`learn_layers`], additionally emitting the simulator's per-round
/// [`RoundEvent`](anonet_trace::RoundEvent)s (deliveries, inbox sizes) to
/// `sink`.
pub fn learn_layers_with_sink<N: DynamicNetwork, S: TraceSink>(
    net: N,
    rounds: u32,
    sink: &mut S,
) -> Vec<Option<u32>> {
    let n = net.order();
    let mut sim = Simulator::new(net);
    let mut procs = LayeringProcess::population(n);
    sim.run_with_sink(&mut procs, rounds, sink);
    procs.iter().map(LayeringProcess::layer).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::pd::{Pd2Layout, RandomPd2};
    use anonet_graph::{metrics, ChainExtended, Graph, GraphSequence};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_pd2_layers_in_two_rounds() {
        let layout = Pd2Layout {
            relays: 3,
            leaves: 10,
        };
        let net = RandomPd2::new(layout, StdRng::seed_from_u64(1));
        let layers = learn_layers(net, 2);
        assert_eq!(layers[0], Some(0));
        for j in 0..3 {
            assert_eq!(layers[layout.relay(j)], Some(1));
        }
        for i in 0..10 {
            assert_eq!(layers[layout.leaf(i)], Some(2));
        }
    }

    #[test]
    fn layers_match_persistent_distances() {
        let layout = Pd2Layout {
            relays: 2,
            leaves: 6,
        };
        let inner = RandomPd2::new(layout, StdRng::seed_from_u64(2));
        let mut net = ChainExtended::new(inner, 4);
        let expected = metrics::persistent_distances(&mut net, 8).unwrap();
        let layers = learn_layers(net, 16);
        for (v, d) in expected.iter().enumerate() {
            assert_eq!(layers[v], Some(*d), "node {v}");
        }
    }

    #[test]
    fn insufficient_rounds_leave_layers_unknown() {
        let net = GraphSequence::constant(Graph::path(5).unwrap());
        let layers = learn_layers(net, 2);
        assert_eq!(layers[1], Some(1));
        assert_eq!(layers[2], Some(2));
        assert_eq!(layers[3], None, "beacon has not arrived yet");
        assert_eq!(layers[4], None);
    }

    #[test]
    fn rewiring_networks_learn_first_beacon_distance() {
        // In a non-PD network the learned value is the beacon distance at
        // first arrival — only persistent distances make it THE distance.
        // Node 2 starts at distance 2 but is rewired next to the leader at
        // round 1, before any round-0 beacon could reach it: it learns 1.
        let g0 = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let g1 = Graph::from_edges(3, [(0, 1), (0, 2)]).unwrap();
        let net = GraphSequence::new(vec![g0, g1]).unwrap();
        let layers = learn_layers(net, 4);
        assert_eq!(layers[2], Some(1), "beacon arrived over the new edge");
    }
}
