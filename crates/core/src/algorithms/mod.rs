//! Counting algorithms.
//!
//! * [`KernelCounting`] — the optimal leader algorithm in `M(DBL)_2`
//!   (decides exactly when the observation system has a unique
//!   non-negative solution); tight against the worst-case adversary.
//! * [`HistoryTreeCounting`] — the linear-round history-tree algorithm
//!   (Di Luna–Viglietta): alternating spine sums over the interned
//!   history tree, O(deliveries) per round, deciding the round the
//!   spine dies — the kernel solver's head-to-head rival in
//!   `exp_crossover`.
//! * [`run_degree_oracle`] — the O(1) algorithm of the paper's Discussion
//!   for restricted `G(PD)_2` networks with a local degree detector.
//! * [`learn_layers`] — beacon layering: nodes of a persistent-distance
//!   network learn their exact layer (the primitive behind the oracle
//!   algorithm's role discovery).
//! * [`run_pd2_view_counting`] — the exact (exponential) counting rule on
//!   anonymous `G(PD)_2` graphs, decoding the leader's full-information
//!   view into a class system.

mod degree_oracle;
mod general_k_counting;
mod history_tree_counting;
mod kernel_counting;
mod layering;
mod pd2_view_counting;

pub use degree_oracle::{
    run_degree_oracle, run_degree_oracle_with_sink, DegreeMsg, DegreeOracleProcess,
};
pub use general_k_counting::{GeneralKCounting, GeneralKError};
pub use history_tree_counting::HistoryTreeCounting;
pub use kernel_counting::{CountingError, CountingOutcome, CountingTrace, KernelCounting};
pub use layering::{learn_layers, learn_layers_with_sink, LayeringProcess};
pub use pd2_view_counting::{
    consistent_populations, decode_pd2, run_pd2_view_counting, run_pd2_view_counting_with_sink,
    DecodedPd2, Pd2ViewError,
};
