//! The O(1) degree-oracle counting algorithm (paper Discussion).
//!
//! In restricted `G(PD)_2` networks (no edges inside a level) where a node
//! knows its degree `|N(v, r)|` *before* the receive phase — the local
//! degree detector of Di Luna et al. \[13\] — counting collapses to constant
//! time: each `V_2` node sends `1 / |N(v,r)|` to its relays, relays forward
//! the sums, and the leader adds them up. The exact fractions telescope to
//! `|V_2|`. This is the paper's demonstration that a *minimal* extra bit of
//! knowledge about the adversary destroys the `Ω(log n)` anonymity cost.
//!
//! The implementation uses exact rationals; the leader's output is an
//! integer by construction.

use anonet_graph::DynamicNetwork;
use anonet_linalg::Ratio;
use anonet_netsim::{Process, RecvContext, Role, SendContext, Simulator};
use anonet_trace::{NullSink, TraceSink};

use super::kernel_counting::{CountingError, CountingOutcome};

/// Messages of the degree-oracle protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegreeMsg {
    /// The leader's beacon (round 0): receivers learn they are relays.
    Beacon,
    /// Placeholder traffic carrying no information.
    Hello,
    /// A leaf's share `1 / degree` (round 1).
    Share(Ratio),
    /// A relay's accumulated leaf shares (round 2).
    Sum(Ratio),
}

/// Per-node state of the degree-oracle counting protocol.
#[derive(Debug, Clone)]
pub struct DegreeOracleProcess {
    role: Role,
    is_relay: bool,
    collected: Ratio,
    relay_count: u64,
    output: Option<u64>,
}

impl DegreeOracleProcess {
    /// A population of `n` processes (node 0 the leader).
    pub fn population(n: usize) -> Vec<DegreeOracleProcess> {
        (0..n)
            .map(|v| DegreeOracleProcess {
                role: if v == 0 {
                    Role::Leader
                } else {
                    Role::Anonymous
                },
                is_relay: false,
                collected: Ratio::ZERO,
                relay_count: 0,
                output: None,
            })
            .collect()
    }
}

impl Process for DegreeOracleProcess {
    type Msg = DegreeMsg;

    fn send(&mut self, ctx: &SendContext) -> DegreeMsg {
        match (self.role, ctx.round) {
            (Role::Leader, 0) => DegreeMsg::Beacon,
            (Role::Anonymous, 1) if !self.is_relay => {
                // `None` means the simulator has no degree oracle at all —
                // the §3 base model, which this protocol must refuse
                // loudly (a configuration error, not a network fault).
                let degree = ctx
                    .degree
                    .expect("degree-oracle protocol requires the degree oracle (§3)");
                // On an in-model G(PD)_2 every leaf has positive degree; a
                // faulted round can isolate one (degree 0), in which case
                // it has nothing to share — the leader's fractional-sum
                // check then withholds the output rather than this send
                // panicking mid-protocol.
                match degree {
                    0 => DegreeMsg::Hello,
                    d => match Ratio::new(1, d as i128) {
                        Ok(share) => DegreeMsg::Share(share),
                        Err(_) => DegreeMsg::Hello,
                    },
                }
            }
            (Role::Anonymous, 2) if self.is_relay => DegreeMsg::Sum(self.collected),
            _ => DegreeMsg::Hello,
        }
    }

    fn receive(&mut self, ctx: RecvContext<'_, DegreeMsg>) {
        match ctx.round {
            0 => {
                if self.role == Role::Leader {
                    // The leader's round-0 neighbours are exactly the relays.
                    self.relay_count = ctx.inbox.len() as u64;
                } else if ctx.inbox.iter().any(|m| matches!(m, DegreeMsg::Beacon)) {
                    self.is_relay = true;
                }
            }
            1 if self.is_relay => {
                for m in ctx.inbox {
                    if let DegreeMsg::Share(r) = m {
                        self.collected += *r;
                    }
                }
            }
            2 if self.role == Role::Leader => {
                let mut leaves = Ratio::ZERO;
                for m in ctx.inbox {
                    if let DegreeMsg::Sum(r) = m {
                        leaves += *r;
                    }
                }
                // On a restricted G(PD)_2 the shares telescope to the
                // integer |V_2|; a fractional sum means the network is
                // out of contract, so the leader withholds its output.
                if let Some(leaves) = leaves.to_integer() {
                    self.output = Some(1 + self.relay_count + leaves as u64);
                }
            }
            _ => {}
        }
    }

    fn output(&self) -> Option<u64> {
        self.output
    }
}

/// Runs the degree-oracle counting protocol on a restricted `G(PD)_2`
/// network. Always terminates after exactly 3 observed rounds — constant
/// in `|V|` (the Discussion's point).
///
/// # Errors
///
/// Returns [`CountingError::Undecided`] if the leader failed to decide
/// within 3 rounds (e.g. the network is not a restricted `G(PD)_2`).
pub fn run_degree_oracle<N: DynamicNetwork>(net: N) -> Result<CountingOutcome, CountingError> {
    run_degree_oracle_with_sink(net, &mut NullSink)
}

/// Like [`run_degree_oracle`], additionally emitting the simulator's
/// per-round [`RoundEvent`](anonet_trace::RoundEvent)s (deliveries, inbox
/// sizes) to `sink` — at most 3 events, one per executed round.
///
/// # Errors
///
/// Same as [`run_degree_oracle`].
pub fn run_degree_oracle_with_sink<N: DynamicNetwork, S: TraceSink>(
    net: N,
    sink: &mut S,
) -> Result<CountingOutcome, CountingError> {
    let n = net.order();
    let mut sim = Simulator::new(net).with_degree_oracle();
    let mut procs = DegreeOracleProcess::population(n);
    let (report, _) = sim.run_with_sink(&mut procs, 3, sink);
    match report.leader_output {
        Some((count, round)) => Ok(CountingOutcome {
            count,
            rounds: round + 1,
        }),
        None => Err(CountingError::Undecided {
            rounds: report.rounds,
            candidates: None,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::pd::{Pd2Layout, Pd2Schedule, RandomPd2};
    use anonet_multigraph::adversary::TwinBuilder;
    use anonet_multigraph::transform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_random_pd2_in_three_rounds() {
        for (relays, leaves, seed) in [(2usize, 5usize, 1u64), (3, 17, 2), (5, 40, 3), (1, 1, 4)] {
            let layout = Pd2Layout { relays, leaves };
            let net = RandomPd2::new(layout, StdRng::seed_from_u64(seed));
            let outcome = run_degree_oracle(net).unwrap();
            assert_eq!(
                outcome.count as usize,
                layout.order(),
                "relays={relays} leaves={leaves}"
            );
            assert_eq!(outcome.rounds, 3, "constant-time counting");
        }
    }

    #[test]
    fn counts_worst_case_adversary_networks_too() {
        // The kernel adversary's G(PD)_2 image is powerless against the
        // degree oracle: still 3 rounds.
        for n in [4u64, 13, 40] {
            let pair = TwinBuilder::new().build(n).unwrap();
            let net = transform::to_pd2(&pair.smaller, pair.horizon as usize + 1).unwrap();
            let order = pair.smaller.nodes() + 3; // leader + 2 relays + leaves
            let outcome = run_degree_oracle(net).unwrap();
            assert_eq!(outcome.count as usize, order);
            assert_eq!(outcome.rounds, 3);
        }
    }

    #[test]
    fn rewiring_between_rounds_is_harmless() {
        // Leaves change relays every round; shares use the round-1 degrees,
        // which is consistent because relays collect in the same round.
        let layout = Pd2Layout {
            relays: 2,
            leaves: 3,
        };
        let net = Pd2Schedule::new(
            layout,
            vec![
                vec![0b01, 0b10, 0b11],
                vec![0b10, 0b11, 0b01],
                vec![0b11, 0b01, 0b10],
            ],
        )
        .unwrap();
        let outcome = run_degree_oracle(net).unwrap();
        assert_eq!(outcome.count, 6);
    }

    #[test]
    fn fails_gracefully_without_pd2_shape() {
        // A path is not a restricted G(PD)_2; nodes at distance > 2 never
        // produce a Sum the leader hears, so the count is wrong or absent —
        // here the leader still "decides" but undercounts, demonstrating
        // why the algorithm is specified for restricted G(PD)_2 only.
        let net = anonet_graph::GraphSequence::constant(anonet_graph::Graph::path(6).unwrap());
        let outcome = run_degree_oracle(net);
        if let Ok(o) = outcome {
            assert_ne!(o.count, 6, "path networks are out of contract");
        }
    }
}
