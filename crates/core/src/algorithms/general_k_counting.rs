//! Counting in `M(DBL)_k` for arbitrary `k` (extension).
//!
//! For `k = 2` the observation system's kernel is one-dimensional and the
//! tree solver decides in `⌊log₃(2n+1)⌋ + 1` rounds. For `k ≥ 3` the
//! kernel grows with the round (see `anonet_multigraph::system_k`), and no
//! closed-form decision rule is known — but the *information-theoretic*
//! rule still applies: enumerate every census consistent with the
//! observations and output when all of them agree on the population.
//! This module implements that rule by bounded lattice enumeration;
//! exponential, so sized for small networks.

use super::kernel_counting::CountingOutcome;
use anonet_linalg::SolverBackend;
use anonet_multigraph::system_k::{GeneralSystem, SystemKError};
use anonet_multigraph::DblMultigraph;
use anonet_trace::{NullSink, RoundEvent, TraceSink};
use core::fmt;

/// Errors of the general-`k` counting rule.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeneralKError {
    /// The underlying system machinery failed (size, `k` mismatch, …).
    System(SystemKError),
    /// The horizon elapsed with more than one consistent population.
    Undecided {
        /// Rounds observed.
        rounds: u32,
        /// The consistent populations at the horizon.
        candidates: Vec<i64>,
    },
    /// The mod-p watcher and the exact decision-round elimination
    /// disagreed — `p` divided a maximal minor of the observation
    /// matrix, so the mod-p kernel dimensions cannot be trusted
    /// (never observed on genuine `M_r^{(k)}`; see `docs/LINALG.md`).
    CertificationMismatch {
        /// Nullity from the exact elimination.
        exact: usize,
        /// Nullity reported by the mod-p tracker.
        modp: usize,
    },
}

impl fmt::Display for GeneralKError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeneralKError::System(e) => write!(f, "system error: {e}"),
            GeneralKError::Undecided { rounds, candidates } => {
                write!(f, "undecided after {rounds} rounds: |W| in {candidates:?}")
            }
            GeneralKError::CertificationMismatch { exact, modp } => write!(
                f,
                "mod-p certification failed: exact nullity {exact} != mod-p nullity {modp}"
            ),
        }
    }
}

impl std::error::Error for GeneralKError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GeneralKError::System(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SystemKError> for GeneralKError {
    fn from(e: SystemKError) -> Self {
        GeneralKError::System(e)
    }
}

/// The exhaustive counting rule for `M(DBL)_k`, any `k ≤ 6`.
///
/// # Examples
///
/// ```
/// use anonet_core::algorithms::GeneralKCounting;
/// use anonet_multigraph::{DblMultigraph, LabelSet};
///
/// // A k = 3 network: one node per non-empty label subset.
/// let all: Vec<LabelSet> = (1u32..8)
///     .map(|m| LabelSet::from_mask(m, 3).unwrap())
///     .collect();
/// let m = DblMultigraph::new(3, vec![all])?;
/// let outcome = GeneralKCounting::new(500_000).run(&m, 6)?;
/// assert_eq!(outcome.count, 7);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GeneralKCounting {
    max_solutions: usize,
    backend: SolverBackend,
}

impl GeneralKCounting {
    /// Creates the rule with an enumeration budget (solutions per round),
    /// on the exact backend.
    pub fn new(max_solutions: usize) -> GeneralKCounting {
        GeneralKCounting {
            max_solutions,
            backend: SolverBackend::Exact,
        }
    }

    /// Selects the arithmetic backing the per-round kernel-dimension
    /// verification: [`SolverBackend::ModpCertified`] maintains the
    /// incremental echelon mod `p = 2^62 − 57` and certifies it against
    /// one exact elimination at the decision round;
    /// [`SolverBackend::CrtCertified`] runs three Montgomery primes in
    /// lockstep and certifies by CRT reconstruction of the kernel basis
    /// (falling back to the same exact replay). Decision rounds and
    /// traces are bit-identical to [`SolverBackend::Exact`] (the
    /// enumeration itself is always exact).
    pub fn with_backend(mut self, backend: SolverBackend) -> GeneralKCounting {
        self.backend = backend;
        self
    }

    /// The backend configured via [`with_backend`](Self::with_backend).
    pub fn backend(&self) -> SolverBackend {
        self.backend
    }

    /// Observes `m` round by round and outputs when exactly one
    /// population remains consistent.
    ///
    /// # Errors
    ///
    /// Returns [`GeneralKError::Undecided`] if `max_rounds` elapse first
    /// and [`GeneralKError::System`] for infeasible instances.
    pub fn run(
        &self,
        m: &DblMultigraph,
        max_rounds: u32,
    ) -> Result<CountingOutcome, GeneralKError> {
        self.run_with_sink(m, max_rounds, &mut NullSink)
    }

    /// Like [`GeneralKCounting::run`], additionally emitting one
    /// [`RoundEvent`] per observed round to `sink`: the number of
    /// consistent populations (`candidate_count`), their interval
    /// (`candidate_lo`/`candidate_hi`) and the kernel dimension of the
    /// round's observation system (`kernel_dim`; grows with the round for
    /// `k ≥ 3` — the reason no closed-form rule is known). While the
    /// system stays small the dimension is *verified* by incremental
    /// elimination
    /// ([`GeneralObservationKernel`](anonet_multigraph::system_k::GeneralObservationKernel));
    /// past the budget it
    /// falls back to [`GeneralSystem::predicted_nullity`], which the
    /// verified prefix has confirmed round by round.
    ///
    /// # Errors
    ///
    /// Same as [`GeneralKCounting::run`].
    pub fn run_with_sink<S: TraceSink>(
        &self,
        m: &DblMultigraph,
        max_rounds: u32,
        sink: &mut S,
    ) -> Result<CountingOutcome, GeneralKError> {
        let sys = GeneralSystem::new(m.k())?;
        // Verify the kernel dimension incrementally while the unknown
        // count stays below this budget (q^rounds columns).
        const VERIFY_MAX_COLUMNS: usize = 512;
        let mut verifier = Some(sys.observation_kernel_with_backend(self.backend));
        let mut last = Vec::new();
        for rounds in 1..=max_rounds {
            let pops = sys.feasible_populations(m, rounds as usize, self.max_solutions)?;
            let mut ev = RoundEvent::new(rounds - 1).candidate_count(pops.len() as u64);
            if let (Some(&lo), Some(&hi)) = (pops.first(), pops.last()) {
                ev = ev.candidates(lo, hi);
            }
            verifier = verifier.filter(|_| {
                sys.q()
                    .checked_pow(rounds)
                    .is_some_and(|cols| cols <= VERIFY_MAX_COLUMNS)
            });
            let nullity = match verifier.as_mut() {
                Some(v) => {
                    v.push_round()?;
                    Ok(v.nullity())
                }
                None => sys.predicted_nullity(rounds as usize - 1),
            };
            if let Ok(nullity) = nullity {
                ev = ev.kernel_dim(nullity as u64);
            }
            sink.record(&ev);
            if pops.len() == 1 {
                // Second tier of the fast-backend protocol: the watched
                // kernel dimensions are certified (CRT reconstruction or
                // one exact elimination) before the leader outputs.
                if self.backend != SolverBackend::Exact {
                    if let Some(v) = verifier.as_ref().filter(|v| v.rounds() > 0) {
                        let exact = v.certify()?;
                        if exact != v.nullity() {
                            return Err(GeneralKError::CertificationMismatch {
                                exact,
                                modp: v.nullity(),
                            });
                        }
                    }
                }
                sink.flush();
                return Ok(CountingOutcome {
                    count: pops[0] as u64,
                    rounds,
                });
            }
            last = pops;
        }
        sink.flush();
        Err(GeneralKError::Undecided {
            rounds: max_rounds,
            candidates: last,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_multigraph::adversary::TwinBuilder;
    use anonet_multigraph::LabelSet;

    fn l3(labels: &[u8]) -> LabelSet {
        LabelSet::from_labels(labels, 3).unwrap()
    }

    #[test]
    fn agrees_with_kernel_counting_for_k2() {
        use crate::algorithms::KernelCounting;
        for n in [1u64, 3, 4, 9] {
            let pair = TwinBuilder::new().build(n).unwrap();
            let exhaustive = GeneralKCounting::new(5_000_000)
                .run(&pair.smaller, 8)
                .unwrap();
            let kernel = KernelCounting::new().run(&pair.smaller, 8).unwrap();
            assert_eq!(exhaustive.count, kernel.count, "n={n}");
            assert_eq!(
                exhaustive.rounds, kernel.rounds,
                "both rules are information-theoretically optimal, n={n}"
            );
        }
    }

    #[test]
    fn modp_backend_matches_exact_for_general_k() {
        use anonet_trace::MemorySink;
        // k = 3: the kernel dimension genuinely grows per round, so the
        // mod-p watcher is verifying something non-trivial here.
        let all: Vec<LabelSet> = (1u32..8).map(|m| LabelSet::from_mask(m, 3).unwrap()).collect();
        let m = DblMultigraph::new(3, vec![all]).unwrap();
        let mut exact_sink = MemorySink::new();
        let exact = GeneralKCounting::new(500_000)
            .run_with_sink(&m, 6, &mut exact_sink)
            .unwrap();
        let mut modp_sink = MemorySink::new();
        let algo = GeneralKCounting::new(500_000).with_backend(SolverBackend::ModpCertified);
        assert_eq!(algo.backend(), SolverBackend::ModpCertified);
        let modp = algo.run_with_sink(&m, 6, &mut modp_sink).unwrap();
        assert_eq!(exact, modp, "outcome is backend-independent");
        assert_eq!(exact_sink.events(), modp_sink.events());
        let mut crt_sink = MemorySink::new();
        let algo = GeneralKCounting::new(500_000).with_backend(SolverBackend::CrtCertified);
        let crt = algo.run_with_sink(&m, 6, &mut crt_sink).unwrap();
        assert_eq!(exact, crt, "outcome is backend-independent");
        assert_eq!(exact_sink.events(), crt_sink.events());
    }

    #[test]
    fn counts_k3_networks() {
        // Rotating singletons: each node cycles through distinct labels.
        let m = DblMultigraph::new(
            3,
            vec![
                vec![l3(&[1]), l3(&[2]), l3(&[3])],
                vec![l3(&[2]), l3(&[3]), l3(&[1])],
                vec![l3(&[3]), l3(&[1]), l3(&[2])],
            ],
        )
        .unwrap();
        let out = GeneralKCounting::new(2_000_000).run(&m, 4).unwrap();
        assert_eq!(out.count, 3);
    }

    #[test]
    fn k3_needs_more_rounds_than_the_k2_embedding() {
        // The same census viewed as k=3 admits more confusions: the
        // one-per-set instance decides later (or at the same time) for
        // larger alphabets.
        let k2 =
            DblMultigraph::new(2, vec![vec![LabelSet::L1, LabelSet::L2, LabelSet::L12]]).unwrap();
        let all7: Vec<LabelSet> = (1u32..8)
            .map(|m| LabelSet::from_mask(m, 3).unwrap())
            .collect();
        let k3 = DblMultigraph::new(3, vec![all7]).unwrap();
        let r2 = GeneralKCounting::new(2_000_000).run(&k2, 8).unwrap().rounds;
        let r3 = GeneralKCounting::new(5_000_000).run(&k3, 8).unwrap().rounds;
        assert!(r3 >= r2, "k=3 ({r3}) at least as slow as k=2 ({r2})");
    }

    #[test]
    fn traced_kernel_dims_match_predicted_nullity() {
        // The incrementally verified kernel dimension in the trace must
        // equal the closed-form prediction at every round, for several k.
        use anonet_trace::MemorySink;
        let k3 = DblMultigraph::new(
            3,
            vec![
                vec![l3(&[1]), l3(&[2]), l3(&[3])],
                vec![l3(&[2]), l3(&[3]), l3(&[1])],
                vec![l3(&[3]), l3(&[1]), l3(&[2])],
            ],
        )
        .unwrap();
        let mut sink = MemorySink::new();
        let out = GeneralKCounting::new(2_000_000)
            .run_with_sink(&k3, 4, &mut sink)
            .unwrap();
        assert_eq!(out.count, 3);
        let sys = GeneralSystem::new(3).unwrap();
        assert!(!sink.events().is_empty());
        for (r, ev) in sink.events().iter().enumerate() {
            assert_eq!(
                ev.kernel_dim,
                Some(sys.predicted_nullity(r).unwrap() as u64),
                "round {r}"
            );
        }
    }

    #[test]
    fn undecided_reports_candidates() {
        let pair = TwinBuilder::new().build(4).unwrap();
        let err = GeneralKCounting::new(1_000_000)
            .run(&pair.smaller, pair.horizon + 1)
            .unwrap_err();
        match err {
            GeneralKError::Undecided { candidates, .. } => {
                assert!(candidates.contains(&4) && candidates.contains(&5));
            }
            other => panic!("unexpected: {other}"),
        }
    }
}
