//! Counting in anonymous `G(PD)_2` networks from full-information views.
//!
//! This is the information-theoretically exact counting rule for the
//! *graph* side of Lemma 1 — strictly harder than the `M(DBL)_2` side,
//! because the leader cannot name the relays. The leader:
//!
//! 1. runs the full-information protocol and *decodes* its own view:
//!    it recovers the two relay view streams (linked by `own` pointers)
//!    and, for every round `t`, the multiset `L_X(t)` of leaf views
//!    attached to relay stream `X` at round `t`;
//! 2. observes that a leaf's label history is only visible *up to view
//!    equivalence* — when both relays broadcast equal views in round `t`,
//!    a leaf touching exactly one of them cannot be attributed (this is
//!    precisely the information the anonymous graph destroys relative to
//!    the labeled multigraph; e.g. round 0 always has equal relay views);
//! 3. builds an exact linear system over *leaf-view classes* (one
//!    unknown per class × final-round attachment × resolution of each
//!    ambiguous round) whose constraints are the observed `L_X(t)`
//!    multisets, and enumerates its non-negative integer solutions;
//! 4. outputs the population as soon as all solutions agree on it.
//!
//! The candidate-population set this produces is exactly the set of sizes
//! consistent with the leader's view, so the rule is optimal — and, like
//! every exact rule on anonymous graphs, exponential in the worst case.
//! Use it for small networks; the `M(DBL)_2` kernel algorithm covers the
//! asymptotics.

use anonet_graph::DynamicNetwork;
use anonet_linalg::enumerate::enumerate_nonnegative_solutions;
use anonet_linalg::SparseIntMatrix;
use anonet_netsim::{run_full_information, Role, ViewId, ViewInterner, ViewRef};
use anonet_trace::{NullSink, RoundEvent, TraceSink};
use core::fmt;
use std::collections::BTreeMap;

use super::kernel_counting::CountingOutcome;

/// Errors of the `G(PD)_2` view decoder/counter.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Pd2ViewError {
    /// The execution does not look like a 2-relay `G(PD)_2` run (wrong
    /// leader degree, broken `own` chains, foreign views in an inbox, …).
    NotPd2 {
        /// What went wrong.
        detail: String,
    },
    /// The class system grew past the enumeration budget.
    TooComplex,
    /// The horizon elapsed with more than one consistent population.
    Undecided {
        /// Rounds observed.
        rounds: u32,
        /// The consistent populations at the horizon (of `|V_2|`).
        candidates: Vec<i64>,
    },
}

impl fmt::Display for Pd2ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pd2ViewError::NotPd2 { detail } => write!(f, "not a G(PD)_2 execution: {detail}"),
            Pd2ViewError::TooComplex => write!(f, "class system exceeds the enumeration budget"),
            Pd2ViewError::Undecided { rounds, candidates } => {
                write!(
                    f,
                    "undecided after {rounds} rounds: |V_2| in {candidates:?}"
                )
            }
        }
    }
}

impl std::error::Error for Pd2ViewError {}

fn not_pd2(detail: impl Into<String>) -> Pd2ViewError {
    Pd2ViewError::NotPd2 {
        detail: detail.into(),
    }
}

/// The decoded skeleton of a `G(PD)_2` execution, from the leader's view.
#[derive(Debug, Clone)]
pub struct DecodedPd2 {
    /// `relay[x][t]`: relay stream `x ∈ {0, 1}`'s view after `t` rounds.
    pub relay: [Vec<ViewId>; 2],
    /// `attached[x][t]`: multiset (sorted `(view, count)`) of leaf views
    /// after `t` rounds attached to stream `x` in round `t`.
    pub attached: [Vec<Vec<(ViewId, u32)>>; 2],
}

impl DecodedPd2 {
    /// Number of decoded attachment levels.
    pub fn levels(&self) -> usize {
        self.attached[0].len()
    }
}

/// Decodes the leader's per-round views (`leader_views[t]` = view after
/// `t` rounds) into relay streams and attachment multisets.
///
/// # Errors
///
/// Returns [`Pd2ViewError::NotPd2`] if the view structure is inconsistent
/// with a 2-relay `G(PD)_2` execution.
pub fn decode_pd2(
    interner: &ViewInterner,
    leader_views: &[ViewId],
) -> Result<DecodedPd2, Pd2ViewError> {
    let rounds = leader_views.len().saturating_sub(1);
    if rounds == 0 {
        return Err(not_pd2("need at least one observed round"));
    }
    // Relay views after t rounds, received by the leader in round t.
    let mut relay: [Vec<ViewId>; 2] = [Vec::new(), Vec::new()];
    for t in 0..rounds {
        let ViewRef::Step { own, received } = interner.resolve(leader_views[t + 1]) else {
            return Err(not_pd2("leader view chain ends early"));
        };
        if own != leader_views[t] {
            return Err(not_pd2("leader own-chain mismatch"));
        }
        let mut flat = Vec::new();
        for &(v, c) in received {
            for _ in 0..c {
                flat.push(v);
            }
        }
        if flat.len() != 2 {
            return Err(not_pd2(format!(
                "leader degree {} at round {t}, expected 2 relays",
                flat.len()
            )));
        }
        let (v1, v2) = (flat[0], flat[1]);
        if t == 0 {
            relay[0].push(v1);
            relay[1].push(v2);
            continue;
        }
        let own_of = |v: ViewId| interner.resolve(v).own();
        let (o1, o2) = (own_of(v1), own_of(v2));
        let (pa, pb) = (relay[0][t - 1], relay[1][t - 1]);
        let assign = if o1 == Some(pa) && o2 == Some(pb) {
            (v1, v2)
        } else if o1 == Some(pb) && o2 == Some(pa) {
            (v2, v1)
        } else {
            return Err(not_pd2(format!("relay own-chains broken at round {t}")));
        };
        relay[0].push(assign.0);
        relay[1].push(assign.1);
    }

    // Attachment multisets: L_x(t) comes from relay view at t+1.
    let levels = rounds - 1;
    let mut attached: [Vec<Vec<(ViewId, u32)>>; 2] = [Vec::new(), Vec::new()];
    for t in 0..levels {
        for x in 0..2 {
            let ViewRef::Step { own, received } = interner.resolve(relay[x][t + 1]) else {
                return Err(not_pd2("relay view chain ends early"));
            };
            if own != relay[x][t] {
                return Err(not_pd2("relay own-chain mismatch"));
            }
            // Remove exactly one occurrence of the leader's view at t.
            let mut leaves: Vec<(ViewId, u32)> = Vec::new();
            let mut removed_leader = false;
            for &(v, c) in received {
                if v == leader_views[t] && !removed_leader {
                    removed_leader = true;
                    if c > 1 {
                        leaves.push((v, c - 1));
                    }
                } else {
                    leaves.push((v, c));
                }
            }
            if !removed_leader {
                return Err(not_pd2(format!(
                    "relay at round {t} never heard the leader"
                )));
            }
            attached[x].push(leaves);
        }
    }
    Ok(DecodedPd2 { relay, attached })
}

/// One unknown of the class system: a leaf-view class together with the
/// resolution of everything its view leaves open.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct ClassVariable {
    /// The class's view chain, deepest first (`chain[t]` = view after `t`
    /// rounds).
    chain: Vec<ViewId>,
    /// For each level `t < levels`: which streams the leaf attached to
    /// (`0b01` = stream 0, `0b10` = stream 1, `0b11` = both).
    attachments: Vec<u8>,
}

/// Expands the attachment possibilities of a leaf-view class.
///
/// For each level, the class view dictates the received relay multiset;
/// when both relay views coincide and only one was received the stream is
/// ambiguous, producing one variable per resolution.
fn class_variables(
    interner: &ViewInterner,
    decoded: &DecodedPd2,
    deepest: ViewId,
    levels: usize,
) -> Result<Vec<ClassVariable>, Pd2ViewError> {
    // Reconstruct the view chain from the deepest view down.
    let mut chain = vec![deepest];
    let mut cur = deepest;
    while let Some(own) = interner.resolve(cur).own() {
        chain.push(own);
        cur = own;
    }
    if interner.resolve(cur) != ViewRef::Leaf(Role::Anonymous) {
        return Err(not_pd2("leaf chain does not end in an anonymous leaf"));
    }
    chain.reverse();
    if chain.len() != levels + 1 {
        return Err(not_pd2("leaf view depth mismatch"));
    }

    // Per level, the possible attachment masks.
    let mut options: Vec<Vec<u8>> = Vec::with_capacity(levels);
    for t in 0..levels {
        let step = interner.resolve(chain[t + 1]);
        let (a, b) = (decoded.relay[0][t], decoded.relay[1][t]);
        let total = step.received_count();
        let opts: Vec<u8> = if a == b {
            match total {
                2 if step.multiplicity(a) == 2 => vec![0b11],
                1 if step.multiplicity(a) == 1 => vec![0b01, 0b10],
                _ => {
                    return Err(not_pd2(format!(
                        "leaf inbox at level {t} incompatible with equal relay views"
                    )))
                }
            }
        } else {
            let ma = step.multiplicity(a).min(1) as u8;
            let mb = step.multiplicity(b).min(1) as u8;
            let mask = ma | (mb << 1);
            if mask == 0 || step.multiplicity(a) > 1 || step.multiplicity(b) > 1 {
                return Err(not_pd2(format!("leaf inbox at level {t} malformed")));
            }
            if (step.multiplicity(a) + step.multiplicity(b)) != total {
                return Err(not_pd2(format!(
                    "leaf inbox at level {t} contains foreign views"
                )));
            }
            vec![mask]
        };
        options.push(opts);
    }

    // Cartesian product of the per-level options.
    let mut vars = vec![ClassVariable {
        chain: chain.clone(),
        attachments: Vec::new(),
    }];
    for opts in options {
        let mut next = Vec::with_capacity(vars.len() * opts.len());
        for v in &vars {
            for &o in &opts {
                let mut w = v.clone();
                w.attachments.push(o);
                next.push(w);
            }
        }
        vars = next;
        if vars.len() > 4096 {
            return Err(Pd2ViewError::TooComplex);
        }
    }
    Ok(vars)
}

/// The populations of `V_2` consistent with the leader's view after
/// `leader_views.len() - 1` rounds, by exact class-system enumeration.
///
/// # Errors
///
/// Returns [`Pd2ViewError::NotPd2`] for malformed executions and
/// [`Pd2ViewError::TooComplex`] past the enumeration budget.
pub fn consistent_populations(
    interner: &ViewInterner,
    leader_views: &[ViewId],
    max_solutions: usize,
) -> Result<Vec<i64>, Pd2ViewError> {
    let decoded = decode_pd2(interner, leader_views)?;
    let levels = decoded.levels();
    if levels == 0 {
        return Err(not_pd2("need at least two observed rounds"));
    }

    // Unknowns: every deepest-level class, expanded by its ambiguity and
    // its final-round attachment (which IS observed per stream, so the
    // final attachment is part of the constraint structure instead).
    // Deepest classes: leaf views at level `levels - 1` seen on either
    // stream.
    let deepest_level = levels - 1;
    let mut deepest: Vec<ViewId> = Vec::new();
    for x in 0..2 {
        for &(v, _) in &decoded.attached[x][deepest_level] {
            if !deepest.contains(&v) {
                deepest.push(v);
            }
        }
    }
    deepest.sort_unstable();

    let mut variables: Vec<ClassVariable> = Vec::new();
    for &v in &deepest {
        variables.extend(class_variables(interner, &decoded, v, deepest_level)?);
    }
    // Final-round attachment expansion: each variable may attach to
    // stream 0, 1 or both at `deepest_level`; which options are possible
    // is constrained by membership of its deepest view in the L multisets,
    // but the true constraint is the count equations below — expand all
    // three options and let the equations cut them down.
    let mut expanded: Vec<ClassVariable> = Vec::new();
    for v in &variables {
        for mask in [0b01u8, 0b10, 0b11] {
            let mut w = v.clone();
            w.attachments.push(mask);
            expanded.push(w);
        }
    }
    let variables = expanded;
    if variables.len() > 4096 {
        return Err(Pd2ViewError::TooComplex);
    }

    // Constraints: for each level t and stream x, for each class c present
    // in L_x(t): sum of variables with chain[t] = c attaching to x at t
    // equals the observed count. Additionally, classes NOT present must
    // sum to zero — encode via rows with rhs 0.
    let mut rows: Vec<(Vec<u32>, i64)> = Vec::new();
    for t in 0..levels {
        for x in 0..2usize {
            // Observed counts per class at this level/stream.
            let observed: BTreeMap<ViewId, i64> = decoded.attached[x][t]
                .iter()
                .map(|&(v, c)| (v, c as i64))
                .collect();
            // Classes appearing among variables at this level.
            let mut classes: Vec<ViewId> = variables.iter().map(|v| v.chain[t]).collect();
            classes.sort_unstable();
            classes.dedup();
            for c in classes {
                let cols: Vec<u32> = variables
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.chain[t] == c && v.attachments[t] & (1 << x) != 0)
                    .map(|(i, _)| i as u32)
                    .collect();
                let rhs = observed.get(&c).copied().unwrap_or(0);
                rows.push((cols, rhs));
            }
            // Observed classes that no variable can produce make the
            // system infeasible (should not happen for honest runs).
            for (&c, &count) in &observed {
                if count > 0 && !variables.iter().any(|v| v.chain[t] == c) {
                    return Err(not_pd2(format!(
                        "observed class at level {t} not derivable from deepest classes"
                    )));
                }
            }
        }
    }

    let mut matrix = SparseIntMatrix::new(variables.len());
    let mut rhs = Vec::with_capacity(rows.len());
    for (cols, b) in rows {
        let entries: Vec<(u32, i64)> = cols.into_iter().map(|c| (c, 1)).collect();
        matrix
            .push_row(entries)
            .map_err(|_| Pd2ViewError::TooComplex)?;
        rhs.push(b);
    }
    let cap = rhs.iter().copied().max().unwrap_or(0);
    let solutions = enumerate_nonnegative_solutions(&matrix, &rhs, cap, max_solutions)
        .map_err(|_| Pd2ViewError::TooComplex)?;
    let mut pops: Vec<i64> = solutions.iter().map(|s| s.iter().sum()).collect();
    pops.sort_unstable();
    pops.dedup();
    Ok(pops)
}

/// Runs the exact view-counting rule on an anonymous `G(PD)_2` network:
/// collects rounds until exactly one population of `V_2` is consistent
/// with the leader's view, then outputs `|V| = population + 3`.
///
/// # Errors
///
/// Returns [`Pd2ViewError`] if the execution is not `G(PD)_2`, the system
/// is too complex, or the horizon elapses without a decision.
pub fn run_pd2_view_counting<N: DynamicNetwork>(
    net: N,
    max_rounds: u32,
    max_solutions: usize,
) -> Result<CountingOutcome, Pd2ViewError> {
    run_pd2_view_counting_with_sink(net, max_rounds, max_solutions, &mut NullSink)
}

/// Like [`run_pd2_view_counting`], additionally emitting one
/// [`RoundEvent`] per observed round (from round 1 on — the decoder needs
/// two rounds) to `sink`: the number of consistent populations of `V_2`
/// (`candidate_count`) and, when at least one is consistent, the
/// candidate interval (`candidate_lo`/`candidate_hi`, in `|V_2|` terms).
///
/// # Errors
///
/// Same as [`run_pd2_view_counting`].
pub fn run_pd2_view_counting_with_sink<N: DynamicNetwork, S: TraceSink>(
    mut net: N,
    max_rounds: u32,
    max_solutions: usize,
    sink: &mut S,
) -> Result<CountingOutcome, Pd2ViewError> {
    let mut interner = ViewInterner::new();
    let run = run_full_information(&mut net, max_rounds, &mut interner);
    let mut last = Vec::new();
    for rounds in 2..=max_rounds as usize {
        let views: Vec<ViewId> = (0..=rounds).map(|r| run.leader_view(r)).collect();
        let pops = consistent_populations(&interner, &views, max_solutions)?;
        let mut ev = RoundEvent::new(rounds as u32 - 1).candidate_count(pops.len() as u64);
        if let (Some(&lo), Some(&hi)) = (pops.first(), pops.last()) {
            ev = ev.candidates(lo, hi);
        }
        sink.record(&ev);
        if pops.len() == 1 {
            sink.flush();
            return Ok(CountingOutcome {
                count: pops[0] as u64 + 3,
                rounds: rounds as u32,
            });
        }
        last = pops;
    }
    sink.flush();
    Err(Pd2ViewError::Undecided {
        rounds: max_rounds,
        candidates: last,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_multigraph::adversary::{RandomDblAdversary, TwinBuilder};
    use anonet_multigraph::{transform, Census, DblMultigraph, LabelSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn views_of(m: &DblMultigraph, rounds: u32) -> (ViewInterner, Vec<ViewId>) {
        let mut net = transform::to_pd2(m, rounds as usize).expect("transforms");
        let mut interner = ViewInterner::new();
        let run = run_full_information(&mut net, rounds, &mut interner);
        let views = (0..=rounds as usize).map(|r| run.leader_view(r)).collect();
        (interner, views)
    }

    #[test]
    fn decode_recovers_structure() {
        let m = DblMultigraph::new(
            2,
            vec![
                vec![LabelSet::L1, LabelSet::L12, LabelSet::L2],
                vec![LabelSet::L12, LabelSet::L1, LabelSet::L2],
            ],
        )
        .unwrap();
        let (interner, views) = views_of(&m, 4);
        let d = decode_pd2(&interner, &views).unwrap();
        assert_eq!(d.levels(), 3);
        // Level-0 attachment counts match label-1/label-2 edge counts (up
        // to the arbitrary stream naming).
        let count = |x: usize, t: usize| -> u32 { d.attached[x][t].iter().map(|&(_, c)| c).sum() };
        let mut observed = [count(0, 0), count(1, 0)];
        observed.sort_unstable();
        assert_eq!(observed, [2, 2]); // 2 edges with label 1, 2 with label 2
    }

    #[test]
    fn truth_always_consistent() {
        let mut adv = RandomDblAdversary::new(StdRng::seed_from_u64(11));
        for n in [1u64, 2, 3, 4, 5, 6, 3, 5] {
            let m = adv.generate(n, 4).unwrap();
            let (interner, views) = views_of(&m, 4);
            let pops = consistent_populations(&interner, &views, 2_000_000).unwrap();
            assert!(
                pops.contains(&(m.nodes() as i64)),
                "truth {} in {pops:?}",
                m.nodes()
            );
        }
    }

    #[test]
    fn counts_small_networks_exactly() {
        let mut adv = RandomDblAdversary::new(StdRng::seed_from_u64(21));
        let mut counted = 0;
        for _ in 0..6 {
            let m = adv.generate(4, 8).unwrap();
            let net = transform::to_pd2(&m, 8).expect("transforms");
            match run_pd2_view_counting(net, 8, 2_000_000) {
                Ok(out) => {
                    assert_eq!(out.count as usize, m.nodes() + 3);
                    counted += 1;
                }
                Err(Pd2ViewError::Undecided { candidates, .. }) => {
                    assert!(candidates.contains(&(m.nodes() as i64)));
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(counted >= 3, "most random instances decide, got {counted}");
    }

    #[test]
    fn twins_remain_ambiguous_through_horizon() {
        // The view-counting rule, being exact, cannot decide between the
        // Lemma 5 twins within the horizon — the graph-level form of
        // Theorem 2.
        let pair = TwinBuilder::new().build(4).unwrap();
        let rounds = pair.horizon + 2; // = 3 observed rounds
        let (interner, views) = views_of(&pair.smaller, rounds);
        let pops = consistent_populations(&interner, &views, 2_000_000).unwrap();
        assert!(
            pops.contains(&4) && pops.contains(&5),
            "both twin sizes consistent: {pops:?}"
        );
    }

    #[test]
    fn all_pairs_network_decides() {
        // Every node on {1,2} every round: no ambiguity, quick decision.
        let m = Census::from_counts(vec![0, 0, 5])
            .unwrap()
            .realize()
            .unwrap();
        let net = transform::to_pd2(&m, 6).expect("transforms");
        let out = run_pd2_view_counting(net, 6, 1_000_000).unwrap();
        assert_eq!(out.count, 5 + 3);
    }

    #[test]
    fn rejects_non_pd2_networks() {
        let net = anonet_graph::GraphSequence::constant(anonet_graph::Graph::path(5).unwrap());
        let err = run_pd2_view_counting(net, 4, 10_000).unwrap_err();
        assert!(matches!(err, Pd2ViewError::NotPd2 { .. }), "{err}");
    }
}
