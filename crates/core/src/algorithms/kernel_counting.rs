//! Optimal leader counting in `M(DBL)_2`: the kernel (affine-solver)
//! algorithm.
//!
//! The leader's knowledge after observing rounds `0..=r` is the affine
//! line `{s + t·k_r}` of censuses consistent with its observations
//! (`anonet_multigraph::system::solve_census`). The *optimal* deterministic
//! algorithm outputs as soon as exactly one point on that line is
//! non-negative — no algorithm can decide earlier (it would be wrong on an
//! indistinguishable twin), and deciding then is always safe. Against the
//! kernel adversary this algorithm terminates after exactly
//! `⌊log₃(2n+1)⌋ + 1` observed rounds, matching Theorem 1.

use anonet_linalg::SolverBackend;
use anonet_multigraph::system::{AffineCensus, IncrementalSolver, ObservationKernel};
use anonet_multigraph::{DblMultigraph, ObservationStream};
use anonet_trace::{NullSink, RoundEvent, TraceSink};
use core::fmt;

/// The outcome of running a counting algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountingOutcome {
    /// The count the leader output.
    pub count: u64,
    /// Number of observed rounds before deciding (deciding after rounds
    /// `0..=r` gives `rounds = r + 1`).
    pub rounds: u32,
}

/// Errors from the kernel counting algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CountingError {
    /// The horizon elapsed before the solution became unique.
    Undecided {
        /// Rounds observed without reaching uniqueness.
        rounds: u32,
        /// The candidate population range at the horizon.
        candidates: Option<(i64, i64)>,
    },
    /// The observations did not come from a `k = 2` multigraph.
    BadObservations(String),
}

impl fmt::Display for CountingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CountingError::Undecided { rounds, candidates } => match candidates {
                Some((lo, hi)) => write!(
                    f,
                    "undecided after {rounds} rounds: population in [{lo}, {hi}]"
                ),
                None => write!(f, "undecided after {rounds} rounds"),
            },
            CountingError::BadObservations(s) => write!(f, "bad observations: {s}"),
        }
    }
}

impl std::error::Error for CountingError {}

/// Per-round progress of the kernel counting leader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountingTrace {
    /// After each observed round: the feasible population interval.
    pub candidate_ranges: Vec<(i64, i64)>,
}

/// The kernel counting algorithm.
///
/// The leader's state is maintained *incrementally*: an
/// [`ObservationStream`] derives each round's per-prefix counts from the
/// running histories, and an [`IncrementalSolver`] extends the affine
/// solution line level by level — so observing round `r` costs
/// `O(nodes + 3^r)` instead of rebuilding (and re-solving) the whole
/// observation system from scratch.
///
/// # Examples
///
/// ```
/// use anonet_core::algorithms::KernelCounting;
/// use anonet_multigraph::adversary::TwinBuilder;
///
/// // Against the worst-case adversary, counting n = 13 nodes takes
/// // exactly ⌊log₃ 27⌋ + 1 = 4 rounds.
/// let pair = TwinBuilder::new().build(13)?;
/// let outcome = KernelCounting::new().run(&pair.smaller, 16)?;
/// assert_eq!(outcome.count, 13);
/// assert_eq!(outcome.rounds, 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelCounting {
    verify_kernel: bool,
    trace_certification: bool,
    backend: SolverBackend,
}

/// Column budget for opt-in kernel verification: `3^5 = 243` unknowns
/// (rounds ≤ 5). Beyond it the leader reports the Lemma 3 value without
/// re-verifying — the verified and assumed values provably coincide.
/// The same budget caps the one-shot exact certification replay of the
/// fast backends (the [`SolverBackend::CrtCertified`] *reconstruction*
/// certificate has no such cliff and runs at any watched depth; only
/// its replay fallback is capped here).
const KERNEL_VERIFY_MAX_COLUMNS: usize = 243;

/// Column budget for the per-round watcher of the fast backends
/// ([`SolverBackend::ModpCertified`] / [`SolverBackend::CrtCertified`]):
/// `3^7 = 2187` unknowns (rounds ≤ 7) — two refinements past the exact
/// verifier. Raised from `3^6` once the delayed-reduction kernels made
/// watched appends cheap enough; the boundary regression tests cover
/// both the old (`729`) and new (`2187`) limits.
const MODP_WATCH_MAX_COLUMNS: usize = 2187;

/// Whether a round-`rounds` system (`3^rounds` unknowns) fits a column
/// budget. Computed with checked arithmetic so that depths whose column
/// count overflows `usize` are simply *past every budget* — the watcher
/// is gated off and the run falls back to Lemma 3's closed form —
/// rather than panicking mid-round (`ternary_count` asserts on
/// overflow).
fn within_column_budget(rounds: usize, budget: usize) -> bool {
    u32::try_from(rounds)
        .ok()
        .and_then(|r| 3usize.checked_pow(r))
        .is_some_and(|cols| cols <= budget)
}

impl KernelCounting {
    /// Creates the algorithm (kernel verification off, exact backend).
    pub fn new() -> KernelCounting {
        KernelCounting {
            verify_kernel: false,
            trace_certification: false,
            backend: SolverBackend::Exact,
        }
    }

    /// Additionally maintains the echelon form of `M_r` via an
    /// [`ObservationKernel`] and reports the *verified* kernel dimension
    /// in trace events instead of assuming Lemma 3's value of 1.
    ///
    /// Verification runs while the system has at most `3^5 = 243`
    /// unknowns (observed rounds ≤ 5); deeper rounds fall back to the
    /// closed form, which the verified prefix has just re-proved. The
    /// decision rule — and therefore every outcome and candidate range —
    /// is unaffected.
    pub fn with_kernel_verification(mut self) -> KernelCounting {
        self.verify_kernel = true;
        self
    }

    /// Selects the arithmetic backing the per-round kernel queries.
    ///
    /// [`SolverBackend::Exact`] (the default) is the PR 2 behaviour.
    /// [`SolverBackend::ModpCertified`] always maintains a mod-p
    /// [`ObservationKernel`] (columns ≤ `3^7 = 2187`) for the per-round
    /// kernel dimension, and certifies it against a one-shot exact
    /// elimination at the decision round (columns ≤ `3^5 = 243`) before
    /// the leader outputs. [`SolverBackend::CrtCertified`] watches with
    /// a three-prime tracker under the same column budget and replaces
    /// the decision-round replay with a *reconstructed* certificate —
    /// CRT + rational reconstruction + exact verification of the kernel
    /// basis — at any watched depth, falling back to the exact replay
    /// only if reconstruction fails. Decision rounds, candidate ranges
    /// and traces are bit-identical to the exact backend — the
    /// cross-oracle suite in `tests/tracing.rs` pins this over 50 seeds.
    pub fn with_backend(mut self, backend: SolverBackend) -> KernelCounting {
        self.backend = backend;
        self
    }

    /// Additionally labels the decision round's trace event with the
    /// certification method used (`"crt"` or `"exact-replay"`). Off by
    /// default so fast-backend traces stay byte-identical to the exact
    /// backend's.
    pub fn with_certification_trace(mut self) -> KernelCounting {
        self.trace_certification = true;
        self
    }

    /// The backend configured via [`with_backend`](Self::with_backend).
    pub fn backend(&self) -> SolverBackend {
        self.backend
    }

    /// Runs the leader against the multigraph, observing one round at a
    /// time, and outputs at the first round whose observation system has a
    /// unique non-negative solution.
    ///
    /// # Errors
    ///
    /// Returns [`CountingError::Undecided`] if `max_rounds` elapse first
    /// and [`CountingError::BadObservations`] for non-`k=2` multigraphs.
    pub fn run(
        &self,
        m: &DblMultigraph,
        max_rounds: u32,
    ) -> Result<CountingOutcome, CountingError> {
        self.run_traced(m, max_rounds).map(|(o, _)| o)
    }

    /// Like [`KernelCounting::run`], also returning the per-round feasible
    /// population intervals (the leader's shrinking candidate set).
    ///
    /// # Errors
    ///
    /// Same as [`KernelCounting::run`].
    pub fn run_traced(
        &self,
        m: &DblMultigraph,
        max_rounds: u32,
    ) -> Result<(CountingOutcome, CountingTrace), CountingError> {
        self.run_with_sink(m, max_rounds, &mut NullSink)
    }

    /// Like [`KernelCounting::run_traced`], additionally emitting one
    /// [`RoundEvent`] per observed round to `sink`: the feasible
    /// population interval (`candidate_lo`/`candidate_hi`), the number of
    /// feasible censuses on the affine line (`candidate_count`), the
    /// kernel dimension of the observation system `M_r` (always 1 for
    /// `k = 2` by Lemma 3; *verified* per round when
    /// [`with_kernel_verification`](KernelCounting::with_kernel_verification)
    /// is on) and the size of the flat constant-terms vector `m_r`
    /// (`state_size`).
    ///
    /// # Errors
    ///
    /// Same as [`KernelCounting::run`].
    pub fn run_with_sink<S: TraceSink>(
        &self,
        m: &DblMultigraph,
        max_rounds: u32,
        sink: &mut S,
    ) -> Result<(CountingOutcome, CountingTrace), CountingError> {
        let mut trace = CountingTrace {
            candidate_ranges: Vec::new(),
        };
        let mut stream = ObservationStream::new(m)
            .map_err(|e| CountingError::BadObservations(e.to_string()))?;
        let mut solver = IncrementalSolver::new();
        let (mut verifier, watch_cols) = match self.backend {
            SolverBackend::Exact => (
                self.verify_kernel.then(ObservationKernel::new),
                KERNEL_VERIFY_MAX_COLUMNS,
            ),
            // The fast watchers are cheap enough to always run.
            SolverBackend::ModpCertified | SolverBackend::CrtCertified => (
                Some(ObservationKernel::with_backend(self.backend)),
                MODP_WATCH_MAX_COLUMNS,
            ),
        };
        let mut state_size = 0u64;
        let mut last: Option<AffineCensus> = None;
        for rounds in 1..=max_rounds {
            let level = rounds as usize - 1;
            let (a, b) = stream
                .push_round()
                .map_err(|e| CountingError::BadObservations(e.to_string()))?;
            let sol = solver
                .push_level(a, b)
                .map_err(|e| CountingError::BadObservations(e.to_string()))?;
            // The flat constant-terms vector m_{r} grows by the new
            // level's 2·3^level entries (saturating: the metric is
            // diagnostic, and must not panic where the budget gates
            // below already fail closed).
            state_size = state_size.saturating_add(
                3u64.checked_pow(level as u32)
                    .and_then(|c| c.checked_mul(2))
                    .unwrap_or(u64::MAX),
            );
            let kernel_dim = match verifier.as_mut() {
                Some(v) if within_column_budget(rounds as usize, watch_cols) => {
                    v.push_round()
                        .map_err(|e| CountingError::BadObservations(e.to_string()))?;
                    v.nullity() as u64
                }
                _ => 1, // Lemma 3 (re-proved by the verified prefix).
            };
            // In-model observations are always feasible; out-of-model
            // input (e.g. fault-injected deliveries replayed through the
            // observation stream) must fail closed, not panic.
            let range = sol.population_range().ok_or_else(|| {
                CountingError::BadObservations(format!(
                    "observation system infeasible at round {rounds} (out-of-model input)"
                ))
            })?;
            trace.candidate_ranges.push(range);
            // Second tier of the fast-backend protocols, run *before* the
            // decision event is recorded so the certification method can
            // be traced on it. ModpCertified replays the exact
            // elimination once (skipped past the exact column budget,
            // where Lemma 3's closed form is the certificate);
            // CrtCertified reconstructs the certificate from its three
            // prime lanes at any watched depth — no exact re-elimination
            // — and only replays if reconstruction fails (fail-closed).
            let decided = sol.unique_population();
            let mut certification: Option<&'static str> = None;
            if decided.is_some() {
                if let Some(v) = verifier.as_ref().filter(|v| v.rounds() > 0) {
                    let replay_ok =
                        within_column_budget(v.rounds(), KERNEL_VERIFY_MAX_COLUMNS);
                    let exact = match self.backend {
                        SolverBackend::Exact => None,
                        SolverBackend::ModpCertified if replay_ok => {
                            certification = Some("exact-replay");
                            Some(v.certify())
                        }
                        SolverBackend::CrtCertified => match v.crt_certificate() {
                            Some(cert) => {
                                certification = Some("crt");
                                Some(Ok(cert.nullity))
                            }
                            None if replay_ok => {
                                certification = Some("exact-replay");
                                Some(v.certify())
                            }
                            None => None,
                        },
                        _ => None,
                    };
                    if let Some(exact) = exact {
                        let exact = exact
                            .map_err(|e| CountingError::BadObservations(e.to_string()))?;
                        if exact != v.nullity() {
                            return Err(CountingError::BadObservations(format!(
                                "{} certification failed at decision round {rounds}: \
                                 exact nullity {exact} != watched nullity {}",
                                certification.unwrap_or("fast-backend"),
                                v.nullity()
                            )));
                        }
                    }
                }
            }
            let mut event = RoundEvent::new(rounds - 1)
                .candidates(range.0, range.1)
                .candidate_count(sol.solution_count() as u64)
                .kernel_dim(kernel_dim)
                .state_size(state_size);
            if self.trace_certification {
                if let Some(method) = certification {
                    event = event.certification(method);
                }
            }
            sink.record(&event);
            if let Some(count) = decided {
                sink.flush();
                return Ok((
                    CountingOutcome {
                        count: count as u64,
                        rounds,
                    },
                    trace,
                ));
            }
            last = Some(sol);
        }
        sink.flush();
        Err(CountingError::Undecided {
            rounds: max_rounds,
            candidates: last.and_then(|s| s.population_range()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_multigraph::adversary::TwinBuilder;
    use anonet_multigraph::{Census, LabelSet};

    #[test]
    fn counts_exactly_under_worst_case_adversary() {
        let b = TwinBuilder::new();
        for n in [1u64, 2, 3, 4, 7, 12, 13, 26, 40, 100] {
            let pair = b.build(n).unwrap();
            let outcome = KernelCounting::new().run(&pair.smaller, 32).unwrap();
            assert_eq!(outcome.count, n, "exact count for n={n}");
            assert_eq!(
                outcome.rounds,
                crate::bounds::counting_rounds_lower_bound(n),
                "tight against the kernel adversary for n={n}"
            );
            // The larger twin is also counted exactly.
            let outcome = KernelCounting::new().run(&pair.larger, 32).unwrap();
            assert_eq!(outcome.count, n + 1);
        }
    }

    #[test]
    fn never_decides_during_ambiguity() {
        let b = TwinBuilder::new();
        for n in [4u64, 13, 40] {
            let pair = b.build(n).unwrap();
            let horizon = pair.horizon;
            let err = KernelCounting::new()
                .run(&pair.smaller, horizon + 1)
                .unwrap_err();
            match err {
                CountingError::Undecided { rounds, candidates } => {
                    assert_eq!(rounds, horizon + 1);
                    let (lo, hi) = candidates.unwrap();
                    assert!(lo <= n as i64 && (n as i64) < hi);
                }
                other => panic!("unexpected error: {other}"),
            }
        }
    }

    #[test]
    fn trace_ranges_shrink_and_contain_truth() {
        let pair = TwinBuilder::new().build(25).unwrap();
        let (outcome, trace) = KernelCounting::new().run_traced(&pair.smaller, 32).unwrap();
        assert_eq!(outcome.count, 25);
        let mut prev: Option<(i64, i64)> = None;
        for &(lo, hi) in &trace.candidate_ranges {
            assert!((lo..=hi).contains(&25), "truth always feasible");
            if let Some((plo, phi)) = prev {
                assert!(lo >= plo && hi <= phi, "candidate set shrinks");
            }
            prev = Some((lo, hi));
        }
        let last = *trace.candidate_ranges.last().unwrap();
        assert_eq!(last, (25, 25));
    }

    #[test]
    fn easy_instances_decide_fast() {
        // A network where everyone uses distinct singleton labels is easy:
        // label-1 and label-2 observations already pin the census by round 2.
        let m = Census::from_counts(vec![3, 2, 0])
            .unwrap()
            .realize()
            .unwrap();
        let outcome = KernelCounting::new().run(&m, 8).unwrap();
        assert_eq!(outcome.count, 5);
        assert!(outcome.rounds <= 2);
    }

    #[test]
    fn single_node() {
        let m = anonet_multigraph::DblMultigraph::new(2, vec![vec![LabelSet::L12]]).unwrap();
        let outcome = KernelCounting::new().run(&m, 8).unwrap();
        assert_eq!(outcome.count, 1);
        assert_eq!(
            outcome.rounds,
            crate::bounds::counting_rounds_lower_bound(1)
        );
    }

    #[test]
    fn incremental_leader_matches_batch_reference() {
        // The streamed observations + incremental solver must reproduce
        // the batch path (full re-observation + solve_census) exactly at
        // every round prefix.
        use anonet_multigraph::system::solve_census;
        use anonet_multigraph::Observations;
        let pair = TwinBuilder::new().build(26).unwrap();
        let (outcome, trace) = KernelCounting::new().run_traced(&pair.smaller, 32).unwrap();
        assert_eq!(outcome.count, 26);
        for (i, &range) in trace.candidate_ranges.iter().enumerate() {
            let obs = Observations::observe(&pair.smaller, i + 1).unwrap();
            let sol = solve_census(&obs).unwrap();
            assert_eq!(sol.population_range().unwrap(), range, "round {}", i + 1);
        }
    }

    #[test]
    fn kernel_verification_does_not_perturb_the_run() {
        use anonet_trace::MemorySink;
        let pair = TwinBuilder::new().build(40).unwrap();
        let mut plain_sink = MemorySink::new();
        let plain = KernelCounting::new()
            .run_with_sink(&pair.smaller, 32, &mut plain_sink)
            .unwrap();
        let mut verified_sink = MemorySink::new();
        let verified = KernelCounting::new()
            .with_kernel_verification()
            .run_with_sink(&pair.smaller, 32, &mut verified_sink)
            .unwrap();
        assert_eq!(plain, verified, "outcome and trace are unchanged");
        // Lemma 2 verified per round == Lemma 3 assumed: identical events.
        assert_eq!(plain_sink.events(), verified_sink.events());
        assert!(plain_sink
            .events()
            .iter()
            .all(|ev| ev.kernel_dim == Some(1)));
    }

    #[test]
    fn modp_backend_is_bit_identical_to_exact() {
        use anonet_trace::MemorySink;
        // n = 40 decides after 5 rounds (243 columns): the mod-p watcher
        // runs every round and the decision round pays one exact
        // certification replay.
        let pair = TwinBuilder::new().build(40).unwrap();
        let mut exact_sink = MemorySink::new();
        let exact = KernelCounting::new()
            .run_with_sink(&pair.smaller, 32, &mut exact_sink)
            .unwrap();
        let mut modp_sink = MemorySink::new();
        let algo = KernelCounting::new().with_backend(SolverBackend::ModpCertified);
        assert_eq!(algo.backend(), SolverBackend::ModpCertified);
        let modp = algo
            .run_with_sink(&pair.smaller, 32, &mut modp_sink)
            .unwrap();
        assert_eq!(exact, modp, "outcome and trace are backend-independent");
        assert_eq!(exact_sink.events(), modp_sink.events());
    }

    #[test]
    fn modp_backend_decides_past_the_certification_budget() {
        // n = 121 decides after 6 rounds (729 columns): the watcher still
        // runs (watch budget 3^7) but the exact certification replay is
        // skipped (exact budget 3^5) — Lemma 3 is the certificate there.
        let pair = TwinBuilder::new().build(121).unwrap();
        let exact = KernelCounting::new().run(&pair.smaller, 32).unwrap();
        let modp = KernelCounting::new()
            .with_backend(SolverBackend::ModpCertified)
            .run(&pair.smaller, 32)
            .unwrap();
        assert_eq!(exact, modp);
        assert_eq!(modp.rounds, 6);
    }

    #[test]
    fn column_budgets_sit_on_exact_round_boundaries() {
        use anonet_multigraph::ternary_count;
        // The budget constants are 3^5 and 3^7: the exact verifier covers
        // rounds <= 5, the fast watchers exactly two refinements more.
        assert_eq!(ternary_count(5), KERNEL_VERIFY_MAX_COLUMNS);
        assert_eq!(ternary_count(7), MODP_WATCH_MAX_COLUMNS);
        assert!(within_column_budget(5, KERNEL_VERIFY_MAX_COLUMNS));
        assert!(!within_column_budget(6, KERNEL_VERIFY_MAX_COLUMNS));
        // The old 3^6 watch limit stays strictly inside the new one.
        assert!(within_column_budget(6, 729));
        assert!(!within_column_budget(7, 729));
        assert!(within_column_budget(7, MODP_WATCH_MAX_COLUMNS));
        assert!(!within_column_budget(8, MODP_WATCH_MAX_COLUMNS));
    }

    #[test]
    fn overflowing_round_depths_are_past_every_budget_not_a_panic() {
        // 3^41 overflows usize on 64-bit targets, where `ternary_count`
        // asserts. The budget gate must instead treat such depths as past
        // the cap (watcher off, Lemma 3 fallback) — fail closed.
        for rounds in [41usize, 64, 1_000, usize::MAX] {
            assert!(
                !within_column_budget(rounds, usize::MAX),
                "rounds={rounds} must be past-budget, not a panic"
            );
        }
    }

    #[test]
    fn watcher_covers_the_old_budget_boundary() {
        // n = 364 decides after 7 rounds (2187 columns) — past the old
        // 3^6 watch budget, exactly *at* the new 3^7 one. The watcher
        // now runs through the decision round (the raised-budget
        // regression) while the exact certification replay is still
        // skipped (past 3^5). Same outcome as the exact backend.
        let pair = TwinBuilder::new().build(364).unwrap();
        let exact = KernelCounting::new().run(&pair.smaller, 32).unwrap();
        let modp = KernelCounting::new()
            .with_backend(SolverBackend::ModpCertified)
            .run(&pair.smaller, 32)
            .unwrap();
        assert_eq!(exact, modp);
        assert_eq!(modp.rounds, 7);
        assert_eq!(modp.count, 364);
    }

    #[test]
    fn watcher_fails_closed_past_its_column_budget() {
        // n = 1093 decides after 8 rounds (6561 columns): the decision
        // round is past even the raised watch budget (3^7 = 2187), so
        // the watcher is gated off mid-run and kernel_dim falls back to
        // Lemma 3's closed form. The run must complete cleanly — same
        // outcome as the exact backend, no certification, no panic.
        let pair = TwinBuilder::new().build(1093).unwrap();
        let exact = KernelCounting::new().run(&pair.smaller, 32).unwrap();
        let fast = KernelCounting::new()
            .with_backend(SolverBackend::CrtCertified)
            .run(&pair.smaller, 32)
            .unwrap();
        assert_eq!(exact, fast);
        assert_eq!(fast.rounds, 8);
        assert_eq!(fast.count, 1093);
    }

    #[test]
    fn crt_backend_is_bit_identical_to_exact() {
        use anonet_trace::MemorySink;
        // n = 40 decides after 5 rounds (243 columns): the CRT watcher
        // runs every round and the decision round is certified by
        // reconstruction — no exact re-elimination.
        let pair = TwinBuilder::new().build(40).unwrap();
        let mut exact_sink = MemorySink::new();
        let exact = KernelCounting::new()
            .run_with_sink(&pair.smaller, 32, &mut exact_sink)
            .unwrap();
        let mut crt_sink = MemorySink::new();
        let algo = KernelCounting::new().with_backend(SolverBackend::CrtCertified);
        assert_eq!(algo.backend(), SolverBackend::CrtCertified);
        let crt = algo.run_with_sink(&pair.smaller, 32, &mut crt_sink).unwrap();
        assert_eq!(exact, crt, "outcome and trace are backend-independent");
        assert_eq!(exact_sink.events(), crt_sink.events());
    }

    #[test]
    fn certification_trace_labels_the_decision_round() {
        use anonet_trace::MemorySink;
        let pair = TwinBuilder::new().build(40).unwrap();
        // CrtCertified decides via the reconstructed certificate: the
        // decision event carries "crt", earlier events carry nothing —
        // the decision round no longer invokes exact rational
        // elimination.
        let mut crt_sink = MemorySink::new();
        KernelCounting::new()
            .with_backend(SolverBackend::CrtCertified)
            .with_certification_trace()
            .run_with_sink(&pair.smaller, 32, &mut crt_sink)
            .unwrap();
        let (last, earlier) = crt_sink.events().split_last().unwrap();
        assert_eq!(last.certification.as_deref(), Some("crt"));
        assert!(earlier.iter().all(|ev| ev.certification.is_none()));
        // ModpCertified still pays the exact replay at the same depth.
        let mut modp_sink = MemorySink::new();
        KernelCounting::new()
            .with_backend(SolverBackend::ModpCertified)
            .with_certification_trace()
            .run_with_sink(&pair.smaller, 32, &mut modp_sink)
            .unwrap();
        let (last, _) = modp_sink.events().split_last().unwrap();
        assert_eq!(last.certification.as_deref(), Some("exact-replay"));
        // The exact backend certifies nothing, and without the opt-in
        // the facet never appears (byte-identity of default traces).
        let mut exact_sink = MemorySink::new();
        KernelCounting::new()
            .with_certification_trace()
            .run_with_sink(&pair.smaller, 32, &mut exact_sink)
            .unwrap();
        assert!(exact_sink
            .events()
            .iter()
            .all(|ev| ev.certification.is_none()));
        let mut default_sink = MemorySink::new();
        KernelCounting::new()
            .with_backend(SolverBackend::CrtCertified)
            .run_with_sink(&pair.smaller, 32, &mut default_sink)
            .unwrap();
        assert!(default_sink
            .events()
            .iter()
            .all(|ev| ev.certification.is_none()));
    }

    #[test]
    fn rejects_k3() {
        let m = anonet_multigraph::DblMultigraph::new(
            3,
            vec![vec![LabelSet::from_labels(&[3], 3).unwrap()]],
        )
        .unwrap();
        assert!(matches!(
            KernelCounting::new().run(&m, 4),
            Err(CountingError::BadObservations(_))
        ));
    }
}
