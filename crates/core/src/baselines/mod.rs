//! Baseline algorithms from the related work (§2).
//!
//! * [`pushsum`] — mass-conserving gossip under a fair adversary
//!   (Kempe et al. \[8\]): converges, because fair adversaries are easy.
//! * [`mass_drain`] — degree-bounded anonymous counting in the spirit of
//!   Michail et al. \[15\] / Di Luna et al. \[12\]: correct but slow.
//! * [`enumeration`] — the exhaustive view-consistent decision rule: the
//!   information-theoretic optimum for arbitrary anonymous dynamic
//!   networks, at exponential cost.

pub mod enumeration;
pub mod mass_drain;
pub mod pushsum;
