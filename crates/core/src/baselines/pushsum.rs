//! Push-sum gossip size estimation (Kempe, Dobra & Gehrke \[8\]).
//!
//! The classic *fair adversary* baseline: mass-conserving gossip converges
//! to the network size under random rewiring, in sharp contrast to the
//! worst-case adversary of §4. Every node holds a pair `(s, w)`; initially
//! `s = 1` everywhere and `w = 1` only at the leader. Each round a node
//! splits its pair uniformly over itself and its neighbours (using the
//! degree oracle) and sums what it receives; mass conservation (`Σs = n`,
//! `Σw = 1`) makes every local ratio `s/w` converge to `n`.
//!
//! Estimates use `f64` — this baseline is about convergence behaviour, not
//! exactness, and is *not* on any proof path.

use anonet_graph::DynamicNetwork;
use anonet_netsim::{Process, RecvContext, SendContext, Simulator};
use anonet_trace::{NullSink, TraceSink};

/// One node's state in the push-sum protocol.
#[derive(Debug, Clone)]
pub struct PushSumProcess {
    s: f64,
    w: f64,
    share_s: f64,
    share_w: f64,
    estimate: Option<f64>,
}

impl PushSumProcess {
    /// A population of `n` processes (node 0 the leader).
    pub fn population(n: usize) -> Vec<PushSumProcess> {
        (0..n)
            .map(|v| PushSumProcess {
                s: 1.0,
                w: if v == 0 { 1.0 } else { 0.0 },
                share_s: 0.0,
                share_w: 0.0,
                estimate: None,
            })
            .collect()
    }

    /// The node's current size estimate `s / w`, if `w > 0`.
    pub fn estimate(&self) -> Option<f64> {
        self.estimate
    }
}

impl Process for PushSumProcess {
    type Msg = (f64, f64);

    fn send(&mut self, ctx: &SendContext) -> (f64, f64) {
        // Degree 0 (an isolated node on a faulted round) or a missing
        // oracle reading degrades to parts = 1: the node keeps all its
        // mass, which is exactly the push-sum semantics of having no
        // neighbour to push to.
        let degree = ctx.degree.unwrap_or(0) as f64;
        let parts = degree + 1.0;
        self.share_s = self.s / parts;
        self.share_w = self.w / parts;
        // Keep one share for ourselves; the rest is broadcast (each of the
        // `degree` neighbours receives one share).
        (self.share_s, self.share_w)
    }

    fn receive(&mut self, ctx: RecvContext<'_, (f64, f64)>) {
        let mut s = self.share_s;
        let mut w = self.share_w;
        for &(ms, mw) in ctx.inbox {
            s += ms;
            w += mw;
        }
        self.s = s;
        self.w = w;
        if self.w > f64::EPSILON {
            self.estimate = Some(self.s / self.w);
        }
    }
}

/// The trajectory of the leader's push-sum estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct PushSumRun {
    /// `estimates[r]` is the leader's estimate after round `r` (`NaN`
    /// before the leader's weight becomes positive — never happens for the
    /// leader itself, which starts with `w = 1`).
    pub estimates: Vec<f64>,
    /// The true network size.
    pub true_size: usize,
}

impl PushSumRun {
    /// The first round at which the leader's estimate is within
    /// `tolerance` (relative) of the true size and stays there for the
    /// rest of the run.
    pub fn convergence_round(&self, tolerance: f64) -> Option<u32> {
        let n = self.true_size as f64;
        let ok = |e: f64| (e - n).abs() <= tolerance * n;
        let mut candidate = None;
        for (r, &e) in self.estimates.iter().enumerate() {
            if ok(e) {
                if candidate.is_none() {
                    candidate = Some(r as u32);
                }
            } else {
                candidate = None;
            }
        }
        candidate
    }

    /// Relative error after the final round.
    pub fn final_error(&self) -> f64 {
        let n = self.true_size as f64;
        match self.estimates.last() {
            Some(&e) => (e - n).abs() / n,
            None => f64::INFINITY,
        }
    }
}

/// Runs push-sum on `net` for `rounds` rounds and records the leader's
/// estimate trajectory.
pub fn run_pushsum<N: DynamicNetwork>(net: N, rounds: u32) -> PushSumRun {
    run_pushsum_with_sink(net, rounds, &mut NullSink)
}

/// Like [`run_pushsum`], additionally emitting the simulator's per-round
/// [`RoundEvent`](anonet_trace::RoundEvent)s (deliveries, inbox sizes) to
/// `sink`.
pub fn run_pushsum_with_sink<N: DynamicNetwork, S: TraceSink>(
    net: N,
    rounds: u32,
    sink: &mut S,
) -> PushSumRun {
    let n = net.order();
    let mut sim = Simulator::new(net).with_degree_oracle();
    let mut procs = PushSumProcess::population(n);

    // Drive round by round to record the trajectory (the simulator stops on
    // leader output, which push-sum never produces — estimates are polled).
    let mut estimates = Vec::with_capacity(rounds as usize);
    for _ in 0..rounds {
        sim.run_with_sink(&mut procs[..], 1, sink);
        estimates.push(procs[0].estimate().unwrap_or(f64::NAN));
    }
    PushSumRun {
        estimates,
        true_size: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::generators::RandomDynamic;
    use anonet_graph::{Graph, GraphSequence};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn converges_on_static_complete_graph() {
        let net = GraphSequence::constant(Graph::complete(8));
        let run = run_pushsum(net, 60);
        assert!(run.final_error() < 1e-6, "error {}", run.final_error());
        assert!(run.convergence_round(0.01).is_some());
    }

    #[test]
    fn converges_under_fair_random_adversary() {
        let net = RandomDynamic::new(20, 10, StdRng::seed_from_u64(7));
        let run = run_pushsum(net, 200);
        assert!(
            run.final_error() < 1e-3,
            "fair adversary allows convergence, error {}",
            run.final_error()
        );
    }

    #[test]
    fn estimates_eventually_stabilize_on_star() {
        let net = GraphSequence::constant(Graph::star(10).unwrap());
        let run = run_pushsum(net, 300);
        assert!(run.final_error() < 1e-3, "error {}", run.final_error());
    }

    #[test]
    fn convergence_round_semantics() {
        let run = PushSumRun {
            estimates: vec![1.0, 9.0, 10.0, 10.0, 10.1],
            true_size: 10,
        };
        // Within 5% from round 2 onwards.
        assert_eq!(run.convergence_round(0.05), Some(2));
        // Within 0.1%: never stays.
        assert_eq!(run.convergence_round(0.001), None);
    }

    #[test]
    fn single_node_network() {
        let net = GraphSequence::constant(Graph::empty(1));
        let run = run_pushsum(net, 5);
        assert!(run.final_error() < 1e-12);
    }
}
