//! Exhaustive view-consistent counting (the exponential baseline).
//!
//! The generic deterministic algorithm on an anonymous dynamic network:
//! the leader runs the full-information protocol and, at each round,
//! enumerates *every* candidate execution — every size `m` and every
//! sequence of connected graphs on `m` nodes — whose leader view matches
//! what it saw. It can output exactly when all consistent candidates agree
//! on the size. This is the information-theoretically optimal decision
//! rule for arbitrary 1-interval-connected anonymous networks, and it is
//! brutally expensive (the algorithms of [12, 13] tame variants of it with
//! extra assumptions but still pay exponentially many rounds in general).
//!
//! Tractable only for tiny sizes and horizons; the experiment `exp_enum`
//! uses it to cross-check the kernel machinery from first principles.

use anonet_graph::{DynamicNetwork, Graph};
use anonet_netsim::{run_full_information, ViewId, ViewInterner};

/// All connected graphs on `order` nodes (by brute force over edge
/// subsets). For `order = 0, 1` returns the single empty graph.
///
/// # Panics
///
/// Panics if `order > 6` (the enumeration would be astronomically large).
pub fn connected_graphs(order: usize) -> Vec<Graph> {
    assert!(order <= 6, "connected_graphs is for tiny orders");
    let pairs: Vec<(usize, usize)> = (0..order)
        .flat_map(|u| ((u + 1)..order).map(move |v| (u, v)))
        .collect();
    let mut out = Vec::new();
    for mask in 0u32..(1 << pairs.len()) {
        let edges = pairs
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &e)| e);
        let g = Graph::from_edges(order, edges).expect("enumerated edges are valid");
        if g.is_connected() {
            out.push(g);
        }
    }
    out
}

/// The sizes in `sizes` that admit at least one dynamic graph (sequence of
/// connected per-round graphs) whose leader view equals `target` after
/// every round `1..=rounds`.
///
/// `target[r]` must be the observed leader view after `r + 1` rounds, all
/// interned in `interner`. Depth-first search over per-round graphs with
/// early pruning on leader-view mismatch.
pub fn consistent_sizes(
    target: &[ViewId],
    sizes: &[usize],
    interner: &mut ViewInterner,
) -> Vec<usize> {
    let rounds = target.len();
    let mut ok = Vec::new();
    for &m in sizes {
        if m >= 1 && search(m, target, rounds, interner) {
            ok.push(m);
        }
    }
    ok
}

fn search(order: usize, target: &[ViewId], rounds: usize, interner: &mut ViewInterner) -> bool {
    let graphs = connected_graphs(order);
    let leader = interner.leaf(anonet_netsim::Role::Leader);
    let anon = interner.leaf(anonet_netsim::Role::Anonymous);
    let initial: Vec<ViewId> = (0..order)
        .map(|v| if v == 0 { leader } else { anon })
        .collect();
    dfs(&initial, 0, target, rounds, &graphs, interner)
}

fn dfs(
    views: &[ViewId],
    depth: usize,
    target: &[ViewId],
    rounds: usize,
    graphs: &[Graph],
    interner: &mut ViewInterner,
) -> bool {
    if depth == rounds {
        return true;
    }
    for g in graphs {
        let next: Vec<ViewId> = (0..views.len())
            .map(|v| {
                let received = g.neighbors(v).iter().map(|&u| views[u]);
                interner.step(views[v], received)
            })
            .collect();
        if next[0] == target[depth] && dfs(&next, depth + 1, target, rounds, graphs, interner) {
            return true;
        }
    }
    false
}

/// The outcome of the enumeration counting rule on an observed network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumerationOutcome {
    /// For each observed round `r` (1-based), the sizes consistent with
    /// the leader's view after `r` rounds.
    pub candidates_per_round: Vec<Vec<usize>>,
    /// The first round after which exactly one size remained, if any.
    pub decision_round: Option<u32>,
}

/// Runs the enumeration counting rule on `net` for up to `max_rounds`
/// rounds, considering candidate sizes `1..=max_size`.
///
/// # Panics
///
/// Panics if `max_size > 6`.
pub fn run_enumeration_counting<N: DynamicNetwork>(
    net: N,
    max_rounds: u32,
    max_size: usize,
) -> EnumerationOutcome {
    run_enumeration_counting_with_sink(net, max_rounds, max_size, &mut anonet_trace::NullSink)
}

/// Like [`run_enumeration_counting`], additionally emitting one
/// [`RoundEvent`](anonet_trace::RoundEvent) per observed round to `sink`:
/// the number of view-consistent sizes (`candidate_count`) and, when at
/// least one size is consistent, their interval
/// (`candidate_lo`/`candidate_hi`).
///
/// # Panics
///
/// Panics if `max_size > 6`.
pub fn run_enumeration_counting_with_sink<N: DynamicNetwork, S: anonet_trace::TraceSink>(
    mut net: N,
    max_rounds: u32,
    max_size: usize,
    sink: &mut S,
) -> EnumerationOutcome {
    let mut interner = ViewInterner::new();
    let run = run_full_information(&mut net, max_rounds, &mut interner);
    let sizes: Vec<usize> = (1..=max_size).collect();
    let mut candidates_per_round = Vec::new();
    let mut decision_round = None;
    for r in 1..=max_rounds as usize {
        let target: Vec<ViewId> = (1..=r).map(|i| run.leader_view(i)).collect();
        let cands = consistent_sizes(&target, &sizes, &mut interner);
        let mut ev =
            anonet_trace::RoundEvent::new(r as u32 - 1).candidate_count(cands.len() as u64);
        if let (Some(&lo), Some(&hi)) = (cands.first(), cands.last()) {
            ev = ev.candidates(lo as i64, hi as i64);
        }
        sink.record(&ev);
        if cands.len() == 1 && decision_round.is_none() {
            decision_round = Some(r as u32);
        }
        candidates_per_round.push(cands);
    }
    sink.flush();
    EnumerationOutcome {
        candidates_per_round,
        decision_round,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::GraphSequence;

    #[test]
    fn connected_graph_counts() {
        // Known counts of connected labeled graphs: 1, 1, 1, 4, 38.
        assert_eq!(connected_graphs(0).len(), 1);
        assert_eq!(connected_graphs(1).len(), 1);
        assert_eq!(connected_graphs(2).len(), 1);
        assert_eq!(connected_graphs(3).len(), 4);
        assert_eq!(connected_graphs(4).len(), 38);
    }

    #[test]
    fn star_network_counted_by_enumeration() {
        // A static star on 3 nodes. After round 1 the leader only knows it
        // has two anonymous neighbours — a 4-node network could fake that.
        // After round 2 the neighbours' echoed views (each "I saw exactly
        // the leader") rule out any extra hidden node.
        let net = GraphSequence::constant(Graph::star(3).unwrap());
        let out = run_enumeration_counting(net, 2, 4);
        let round1 = &out.candidates_per_round[0];
        assert!(round1.contains(&3) && round1.contains(&4), "{round1:?}");
        assert_eq!(out.candidates_per_round[1], vec![3]);
        assert_eq!(out.decision_round, Some(2));
    }

    #[test]
    fn true_size_always_consistent() {
        for order in 2usize..=4 {
            let net = GraphSequence::constant(Graph::cycle(order.max(3)).unwrap());
            let n = order.max(3);
            let out = run_enumeration_counting(net, 2, 5);
            for cands in &out.candidates_per_round {
                assert!(cands.contains(&n), "n={n} must stay consistent");
            }
        }
    }

    #[test]
    fn path_ambiguity_resolves_with_rounds() {
        // A path 0-1-2: at round 1 the leader (an endpoint) sees one
        // message — consistent with many sizes. More rounds narrow it.
        let net = GraphSequence::constant(Graph::path(3).unwrap());
        let out = run_enumeration_counting(net, 3, 4);
        let first = &out.candidates_per_round[0];
        assert!(first.len() > 1, "one round is ambiguous: {first:?}");
        assert!(first.contains(&3));
    }
}
