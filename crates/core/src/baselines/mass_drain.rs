//! Degree-bounded mass-drain counting (in the spirit of Michail,
//! Chatzigiannakis & Spirakis \[15\] / Di Luna et al. \[12\]).
//!
//! With a known upper bound `d` on the maximum degree, anonymous counting
//! becomes possible without a degree oracle — but slowly. Every non-leader
//! starts with one unit of mass and each round broadcasts `mass / (d+1)`;
//! after the receive phase it learns its actual degree from the inbox size
//! and keeps `mass - degree·share`. The leader is an absorbing sink: it
//! collects mass and never re-emits. Connectivity of every round's graph
//! drains all mass to the leader in the limit, so the leader's collected
//! mass converges to `n - 1` from below — an *upper-bound-then-exact*
//! scheme whose convergence is geometric with rate depending on `d` and
//! the topology (the published algorithms in this family terminate in
//! exponentially many rounds; this baseline exhibits the same slow
//! convergence, contrasting with `O(log n)` for the optimal algorithm).
//!
//! Mass uses `f64`; the leader outputs `⌈collected⌉ + 1` once the residual
//! uncollected mass provably cannot change the rounded value (threshold
//! `epsilon`).

use anonet_graph::DynamicNetwork;
use anonet_netsim::{Process, RecvContext, Role, SendContext, Simulator};
use anonet_trace::{NullSink, TraceSink};

/// One node's state in the mass-drain protocol.
#[derive(Debug, Clone)]
pub struct MassDrainProcess {
    role: Role,
    degree_bound: u32,
    mass: f64,
    share: f64,
    collected: f64,
    bound_violated: bool,
}

impl MassDrainProcess {
    /// A population of `n` processes with degree bound `d` (node 0 the
    /// leader).
    ///
    /// # Panics
    ///
    /// Panics if `degree_bound == 0`.
    pub fn population(n: usize, degree_bound: u32) -> Vec<MassDrainProcess> {
        assert!(degree_bound > 0, "degree bound must be positive");
        (0..n)
            .map(|v| MassDrainProcess {
                role: if v == 0 {
                    Role::Leader
                } else {
                    Role::Anonymous
                },
                degree_bound,
                mass: if v == 0 { 0.0 } else { 1.0 },
                share: 0.0,
                collected: 0.0,
                bound_violated: false,
            })
            .collect()
    }

    /// Mass collected so far (leader only; 0 elsewhere).
    pub fn collected(&self) -> f64 {
        self.collected
    }

    /// Residual mass still held by this node.
    pub fn mass(&self) -> f64 {
        self.mass
    }

    /// Whether this node ever observed a degree exceeding the declared
    /// bound — the protocol's correctness precondition was then violated
    /// and the run's mass accounting is meaningless.
    pub fn bound_violated(&self) -> bool {
        self.bound_violated
    }
}

impl Process for MassDrainProcess {
    type Msg = f64;

    fn send(&mut self, _ctx: &SendContext) -> f64 {
        match self.role {
            Role::Leader => {
                self.share = 0.0;
                0.0
            }
            Role::Anonymous => {
                self.share = self.mass / (self.degree_bound as f64 + 1.0);
                self.share
            }
        }
    }

    fn receive(&mut self, ctx: RecvContext<'_, f64>) {
        let received: f64 = ctx.inbox.iter().sum();
        match self.role {
            Role::Leader => self.collected += received,
            Role::Anonymous => {
                // The inbox size reveals the actual degree after the fact.
                if ctx.inbox.len() as u32 > self.degree_bound {
                    self.bound_violated = true;
                }
                let degree = ctx.inbox.len() as f64;
                self.mass = self.mass - degree * self.share + received;
            }
        }
    }
}

/// Result of a mass-drain run.
#[derive(Debug, Clone, PartialEq)]
pub struct MassDrainRun {
    /// Whether any node observed a degree above the declared bound.
    pub bound_violated: bool,
    /// The leader's collected mass after each round.
    pub collected: Vec<f64>,
    /// The true network size.
    pub true_size: usize,
    /// First round (0-based) at which `ceil(collected + eps) + 1` equals
    /// the true size and the residual is below `eps` — the point where the
    /// leader's rounded count is correct and stable.
    pub exact_round: Option<u32>,
}

/// Runs mass-drain counting with degree bound `degree_bound` for at most
/// `max_rounds` rounds, with stability threshold `epsilon`.
///
/// The `degree_bound` must dominate every degree the adversary ever
/// produces (the \[15\] model assumption); [`MassDrainRun::bound_violated`]
/// reports a violation, which voids the mass accounting.
pub fn run_mass_drain<N: DynamicNetwork>(
    net: N,
    degree_bound: u32,
    max_rounds: u32,
    epsilon: f64,
) -> MassDrainRun {
    run_mass_drain_with_sink(net, degree_bound, max_rounds, epsilon, &mut NullSink)
}

/// Like [`run_mass_drain`], additionally emitting the simulator's
/// per-round [`RoundEvent`](anonet_trace::RoundEvent)s (deliveries, inbox
/// sizes) to `sink`.
pub fn run_mass_drain_with_sink<N: DynamicNetwork, S: TraceSink>(
    net: N,
    degree_bound: u32,
    max_rounds: u32,
    epsilon: f64,
    sink: &mut S,
) -> MassDrainRun {
    let n = net.order();
    let mut sim = Simulator::new(net);
    let mut procs = MassDrainProcess::population(n, degree_bound);
    let mut collected = Vec::with_capacity(max_rounds as usize);
    let mut exact_round = None;
    for r in 0..max_rounds {
        sim.run_with_sink(&mut procs[..], 1, sink);
        let c = procs[0].collected();
        collected.push(c);
        let residual = (n as f64 - 1.0) - c;
        if exact_round.is_none() && residual >= 0.0 && residual < epsilon {
            exact_round = Some(r);
        }
    }
    MassDrainRun {
        bound_violated: procs.iter().any(MassDrainProcess::bound_violated),
        collected,
        true_size: n,
        exact_round,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::pd::{Pd2Layout, RandomPd2};
    use anonet_graph::{Graph, GraphSequence};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mass_is_conserved_and_monotone() {
        let net = GraphSequence::constant(Graph::star(6).unwrap());
        let n = 6;
        let mut sim = Simulator::new(net);
        let mut procs = MassDrainProcess::population(n, 5);
        let mut last = 0.0;
        for _ in 0..50 {
            sim.run(&mut procs[..], 1);
            let total: f64 = procs.iter().map(|p| p.mass() + p.collected()).sum();
            assert!((total - (n as f64 - 1.0)).abs() < 1e-9, "conservation");
            let c = procs[0].collected();
            assert!(c >= last - 1e-12, "leader mass is monotone");
            last = c;
        }
        assert!(last > 4.9, "most mass drained, got {last}");
    }

    #[test]
    fn drains_on_star() {
        let net = GraphSequence::constant(Graph::star(8).unwrap());
        let run = run_mass_drain(net, 7, 400, 0.01);
        assert!(run.exact_round.is_some());
    }

    #[test]
    fn drains_on_random_pd2() {
        let layout = Pd2Layout {
            relays: 2,
            leaves: 6,
        };
        // A relay may touch every leaf plus the leader: bound = 7.
        let net = RandomPd2::new(layout, StdRng::seed_from_u64(11));
        let run = run_mass_drain(net, 7, 2000, 0.01);
        assert!(!run.bound_violated, "bound dominates all degrees");
        assert!(run.exact_round.is_some(), "PD2 networks drain");
    }

    #[test]
    fn degree_bound_violation_is_reported() {
        let layout = Pd2Layout {
            relays: 2,
            leaves: 6,
        };
        let net = RandomPd2::new(layout, StdRng::seed_from_u64(11));
        let run = run_mass_drain(net, 2, 50, 0.01);
        assert!(run.bound_violated, "relay degree exceeds the bound of 2");
    }

    #[test]
    fn larger_degree_bound_slows_convergence() {
        let mk = || GraphSequence::constant(Graph::star(8).unwrap());
        let tight = run_mass_drain(mk(), 7, 3000, 0.01).exact_round.unwrap();
        let loose = run_mass_drain(mk(), 70, 3000, 0.01).exact_round.unwrap();
        assert!(
            loose > tight,
            "overestimating the degree bound costs rounds ({tight} vs {loose})"
        );
    }
}
