//! Closed-form bounds from the paper.
//!
//! All bounds are exact integer formulas; "rounds" counts *observed*
//! rounds (a leader that decides after seeing rounds `0..=r` used `r + 1`
//! rounds).

use anonet_multigraph::adversary::indistinguishability_horizon;

/// `⌊log₃ x⌋` for `x ≥ 1`.
///
/// # Panics
///
/// Panics if `x == 0`.
pub fn log3_floor(x: u128) -> u32 {
    assert!(x > 0, "log3 of zero");
    let mut pow = 1u128;
    let mut e = 0u32;
    while pow <= x / 3 {
        pow *= 3;
        e += 1;
    }
    e
}

/// The last round through which the worst-case adversary keeps sizes `n`
/// and `n + 1` leader-indistinguishable: `⌊log₃(2n+1)⌋ - 1`
/// (Lemma 5 / Theorem 1). `None` for `n = 0`.
pub fn ambiguity_horizon(n: u64) -> Option<u32> {
    indistinguishability_horizon(n)
}

/// Minimum number of observed rounds any counting algorithm needs on a
/// worst-case `M(DBL)_k` (hence `G(PD)_2`) instance of size `n`:
/// `⌊log₃(2n+1)⌋ + 1` (one round past the ambiguity horizon, which spans
/// rounds `0..=⌊log₃(2n+1)⌋ - 1`).
///
/// This is also exactly the number of rounds after which the optimal
/// (affine-solver) leader decides against the kernel adversary, so the
/// bound is tight for that adversary.
pub fn counting_rounds_lower_bound(n: u64) -> u32 {
    match ambiguity_horizon(n) {
        None => 0,
        Some(h) => h + 2,
    }
}

/// The `Θ(log n)` additive cost of anonymity over dissemination for a
/// constant-`D` network (§5): counting needs `D + Ω(log |V|)` rounds while
/// flooding completes in `D`.
pub fn anonymity_gap(n: u64) -> u32 {
    counting_rounds_lower_bound(n)
}

/// Corollary 1 lower bound: on the chain-augmented construction with
/// dynamic diameter `D`, counting needs at least `(D - 2) + Ω(log n)`
/// rounds (the chain adds `D - 2` rounds of pure propagation before the
/// `G(PD)_2` core's ambiguity even reaches the leader).
pub fn corollary_rounds_lower_bound(d: u32, n: u64) -> u32 {
    d.saturating_sub(2) + counting_rounds_lower_bound(n)
}

/// The largest network size guaranteed countable within `rounds` observed
/// rounds under the worst-case adversary — the inverse of
/// [`counting_rounds_lower_bound`]: `(3^rounds - 3) / 2` (0 for fewer than
/// 2 rounds; no network is countable in a single round).
pub fn max_countable_size(rounds: u32) -> u64 {
    if rounds < 2 {
        return 0;
    }
    (3u64.pow(rounds) - 3) / 2
}

/// Number of negative components of the kernel `k_r` (Lemma 4):
/// `(3^{r+1} - 1) / 2`. The adversary can sustain ambiguity at round `r`
/// iff the network has at least this many nodes.
pub fn ambiguity_node_threshold(r: u32) -> u64 {
    (3u64.pow(r + 1) - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_multigraph::system::kernel_sums;

    #[test]
    fn log3_floor_values() {
        assert_eq!(log3_floor(1), 0);
        assert_eq!(log3_floor(2), 0);
        assert_eq!(log3_floor(3), 1);
        assert_eq!(log3_floor(8), 1);
        assert_eq!(log3_floor(9), 2);
        assert_eq!(log3_floor(26), 2);
        assert_eq!(log3_floor(27), 3);
        assert_eq!(log3_floor(3u128.pow(20)), 20);
        assert_eq!(log3_floor(3u128.pow(20) - 1), 19);
    }

    #[test]
    #[should_panic(expected = "log3 of zero")]
    fn log3_zero_panics() {
        log3_floor(0);
    }

    #[test]
    fn horizon_equals_formula() {
        for n in 1..2000u64 {
            assert_eq!(
                ambiguity_horizon(n).unwrap(),
                log3_floor(2 * n as u128 + 1) - 1,
                "n={n}"
            );
        }
    }

    #[test]
    fn counting_bound_is_logarithmic() {
        assert_eq!(counting_rounds_lower_bound(0), 0);
        assert_eq!(counting_rounds_lower_bound(1), 2); // paper: n <= 3 countable in 2 rounds
        assert_eq!(counting_rounds_lower_bound(3), 2);
        assert_eq!(counting_rounds_lower_bound(4), 3); // n >= 4 needs a 3rd round
        assert_eq!(counting_rounds_lower_bound(12), 3);
        assert_eq!(counting_rounds_lower_bound(13), 4);
        // Growth is Θ(log n): doubling n adds at most one round.
        for n in 1..5000u64 {
            let a = counting_rounds_lower_bound(n);
            let b = counting_rounds_lower_bound(2 * n);
            assert!(b >= a && b <= a + 1, "n={n}: {a} -> {b}");
        }
    }

    #[test]
    fn threshold_matches_kernel_sums() {
        for r in 0..8u32 {
            assert_eq!(
                ambiguity_node_threshold(r),
                kernel_sums(r as usize).negative as u64,
                "Σ⁻ k_r at r={r}"
            );
        }
    }

    #[test]
    fn threshold_and_horizon_are_inverse() {
        for r in 0..8u32 {
            let t = ambiguity_node_threshold(r);
            // The smallest network sustaining ambiguity at round r has
            // exactly t nodes.
            assert_eq!(ambiguity_horizon(t).unwrap(), r);
            if t > 1 {
                assert_eq!(ambiguity_horizon(t - 1).unwrap(), r - 1);
            }
        }
    }

    #[test]
    fn max_countable_size_inverts_the_bound() {
        assert_eq!(max_countable_size(0), 0);
        assert_eq!(max_countable_size(1), 0);
        assert_eq!(max_countable_size(2), 3); // the paper: n <= 3 in 2 rounds
        assert_eq!(max_countable_size(3), 12);
        assert_eq!(max_countable_size(4), 39);
        for r in 2..=12u32 {
            let m = max_countable_size(r);
            assert_eq!(
                counting_rounds_lower_bound(m),
                r,
                "n = {m} countable in {r}"
            );
            assert_eq!(
                counting_rounds_lower_bound(m + 1),
                r + 1,
                "n = {} needs one more round",
                m + 1
            );
        }
    }

    #[test]
    fn corollary_bound() {
        assert_eq!(
            corollary_rounds_lower_bound(2, 10),
            counting_rounds_lower_bound(10)
        );
        assert_eq!(
            corollary_rounds_lower_bound(10, 10),
            8 + counting_rounds_lower_bound(10)
        );
        assert_eq!(
            corollary_rounds_lower_bound(0, 10),
            counting_rounds_lower_bound(10)
        );
    }
}
