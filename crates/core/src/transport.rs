//! Verdict runners over a **transport trait**: the guarded counting
//! sessions of [`verdict`](crate::verdict) driven by rounds that arrive
//! from anywhere — an in-memory execution, or a leader ingesting framed
//! deliveries over real TCP (`anonet-net`).
//!
//! The split of responsibilities:
//!
//! * a [`RoundSource`] produces the leader's observations: one
//!   [`RoundColumns`] per synchronous round, with every delivered
//!   history interned in the source's [`HistoryArena`];
//! * [`run_source_verdict`] feeds them to the matching guarded session
//!   ([`GuardedKernelSession`] / [`GuardedHistoryTreeSession`]) and
//!   reduces the run to a [`Verdict`];
//! * transport failure is **fail-closed**: a [`TransportError`] (round
//!   deadline missed, connection lost, protocol breach) converts the
//!   run to [`Verdict::Undecided`] — never a count the remaining rounds
//!   were not there to confirm.
//!
//! [`ExecutionSource`] adapts an in-memory (possibly faulted) execution
//! to the trait; the equivalence tests pin `run_source_verdict` over it
//! to the monolithic [`kernel_verdict`](crate::verdict::kernel_verdict)
//! / [`history_tree_verdict`](crate::verdict::history_tree_verdict)
//! runners, which is what lets `exp_net` byte-compare socketed verdicts
//! against the in-memory oracle.

use crate::verdict::{FaultPlan, GuardedHistoryTreeSession, GuardedKernelSession, Verdict};
use anonet_multigraph::faults::FaultedExecution;
use anonet_multigraph::simulate::Execution;
use anonet_multigraph::{HistoryArena, RoundColumns};
use anonet_trace::{NullSink, TraceSink};
use std::fmt;

/// Why a [`RoundSource`] could not produce the next round.
///
/// Every variant is fail-closed fuel: [`run_source_verdict`] maps each
/// of them to [`Verdict::Undecided`], never to a count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The round's deadline budget elapsed before every live peer
    /// reported (a hung peer — distinct from a *severed* peer, which
    /// still completes the barrier with zero deliveries).
    Timeout {
        /// The round whose barrier timed out.
        round: u32,
    },
    /// The transport shut down before the requested horizon (e.g. the
    /// leader's listener closed underneath the run).
    Closed {
        /// The first round that could not be served.
        round: u32,
    },
    /// A peer broke the wire protocol (bad frame, bad version, a
    /// history that does not extend its predecessor).
    Protocol {
        /// The round being assembled when the breach was detected.
        round: u32,
        /// Human-readable description of the breach.
        detail: String,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Timeout { round } => {
                write!(f, "round {round} deadline elapsed")
            }
            TransportError::Closed { round } => {
                write!(f, "transport closed before round {round}")
            }
            TransportError::Protocol { round, detail } => {
                write!(f, "protocol breach at round {round}: {detail}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// A synchronous stream of leader observations: one canonical
/// [`RoundColumns`] per round, over a shared [`HistoryArena`].
///
/// `Ok(None)` means the stream ended cleanly (the configured horizon);
/// `Err` means it failed and the run must fail closed. Implementations
/// must intern delivered histories into [`arena`](RoundSource::arena)
/// *before* returning the round that references them.
pub trait RoundSource {
    /// The arena resolving every [`HistoryId`](anonet_multigraph::HistoryId)
    /// in rounds returned so far.
    fn arena(&self) -> &HistoryArena;

    /// Produces the next round's deliveries, or `None` at end of
    /// stream.
    fn next_round(&mut self) -> Result<Option<RoundColumns>, TransportError>;
}

/// The algorithm a [`run_source_verdict`] call drives over the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportAlgorithm {
    /// Kernel counting under a [`GuardedKernelSession`].
    Kernel,
    /// History-tree counting under a [`GuardedHistoryTreeSession`].
    HistoryTree,
}

impl TransportAlgorithm {
    /// Stable name used in cell ids and logs.
    pub fn name(self) -> &'static str {
        match self {
            TransportAlgorithm::Kernel => "kernel",
            TransportAlgorithm::HistoryTree => "history-tree",
        }
    }
}

/// Drives `alg`'s guarded session over `source` for up to `max_rounds`
/// rounds and reduces the run to a [`Verdict`].
///
/// `plan` carries the *leader-side* fault schedule (restart rounds and
/// fault facets for tracing) — delivery faults are already inside the
/// rounds the source yields, exactly as in
/// [`kernel_verdict`](crate::verdict::kernel_verdict). Transport
/// failure at any point yields [`Verdict::Undecided`] (fail-closed),
/// even when a provisional decision was pending confirmation.
pub fn run_source_verdict<T: RoundSource>(
    alg: TransportAlgorithm,
    source: &mut T,
    max_rounds: u32,
    plan: &FaultPlan,
) -> Verdict {
    run_source_verdict_with_sink(alg, source, max_rounds, plan, &mut NullSink)
}

/// [`run_source_verdict`] with tracing: emits the same per-round
/// [`RoundEvent`](anonet_trace::RoundEvent)s as the in-memory guarded
/// runners.
pub fn run_source_verdict_with_sink<T: RoundSource, S: TraceSink>(
    alg: TransportAlgorithm,
    source: &mut T,
    max_rounds: u32,
    plan: &FaultPlan,
    sink: &mut S,
) -> Verdict {
    match alg {
        TransportAlgorithm::Kernel => {
            let mut session = GuardedKernelSession::new();
            for _ in 0..max_rounds {
                let round = match source.next_round() {
                    Ok(Some(round)) => round,
                    Ok(None) => break,
                    Err(_) => return session.interrupt(sink),
                };
                if let Some(v) = session.step(source.arena(), &round, plan, sink) {
                    return v;
                }
            }
            session.finish(max_rounds, sink)
        }
        TransportAlgorithm::HistoryTree => {
            let mut session = GuardedHistoryTreeSession::new();
            for _ in 0..max_rounds {
                let round = match source.next_round() {
                    Ok(Some(round)) => round,
                    Ok(None) => break,
                    Err(_) => return session.interrupt(sink),
                };
                if let Some(v) = session.step(source.arena(), &round, plan, sink) {
                    return v;
                }
            }
            session.finish(max_rounds, sink)
        }
    }
}

/// [`RoundSource`] over an in-memory execution: yields each stored
/// round in order, then `Ok(None)`. The reference implementation the
/// socketed leader is tested against.
#[derive(Debug, Clone)]
pub struct ExecutionSource {
    execution: Execution,
    next: usize,
}

impl ExecutionSource {
    /// Wraps a (clean or perturbed) execution.
    pub fn new(execution: Execution) -> ExecutionSource {
        ExecutionSource { execution, next: 0 }
    }

    /// Wraps the execution of a faulted run.
    pub fn from_faulted(faulted: FaultedExecution) -> ExecutionSource {
        ExecutionSource::new(faulted.execution)
    }
}

impl RoundSource for ExecutionSource {
    fn arena(&self) -> &HistoryArena {
        &self.execution.arena
    }

    fn next_round(&mut self) -> Result<Option<RoundColumns>, TransportError> {
        let round = self.execution.rounds.get(self.next).cloned();
        self.next += 1;
        Ok(round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verdict::{
        history_tree_verdict, kernel_verdict, simulate_with_faults, ViolationKind,
    };
    use anonet_multigraph::adversary::TwinBuilder;

    fn source_for(n: u64, horizon: u32, plan: &FaultPlan) -> ExecutionSource {
        let pair = TwinBuilder::new().build(n).unwrap();
        ExecutionSource::from_faulted(simulate_with_faults(
            &pair.smaller,
            horizon as usize,
            plan,
        ))
    }

    #[test]
    fn execution_source_matches_the_monolithic_runners() {
        let plans = [
            FaultPlan::new(),
            FaultPlan::new().drop_deliveries(1, 4, 0),
            FaultPlan::new().duplicate_deliveries(2, 3, 1),
            FaultPlan::new().disconnect(2),
            FaultPlan::new().crash_nodes(1, 2),
            FaultPlan::new().leader_restart(2),
        ];
        for n in [4u64, 13] {
            let pair = TwinBuilder::new().build(n).unwrap();
            let horizon = pair.horizon + 4;
            for plan in &plans {
                let mut src = source_for(n, horizon, plan);
                assert_eq!(
                    run_source_verdict(TransportAlgorithm::Kernel, &mut src, horizon, plan),
                    kernel_verdict(&pair.smaller, horizon, plan, true),
                    "kernel n={n} plan={plan:?}"
                );
                let mut src = source_for(n, horizon, plan);
                assert_eq!(
                    run_source_verdict(TransportAlgorithm::HistoryTree, &mut src, horizon, plan),
                    history_tree_verdict(&pair.smaller, horizon, plan, true),
                    "history-tree n={n} plan={plan:?}"
                );
            }
        }
    }

    /// A source that serves `good` rounds from an execution, then fails.
    struct FlakySource {
        inner: ExecutionSource,
        good: usize,
        served: usize,
        error: TransportError,
    }

    impl RoundSource for FlakySource {
        fn arena(&self) -> &HistoryArena {
            self.inner.arena()
        }

        fn next_round(&mut self) -> Result<Option<RoundColumns>, TransportError> {
            if self.served == self.good {
                return Err(self.error.clone());
            }
            self.served += 1;
            self.inner.next_round()
        }
    }

    #[test]
    fn transport_failure_is_never_a_count() {
        // Even after the leader has provisionally decided (n=4 decides
        // by round 3), a transport failure during confirmation must
        // yield Undecided — the fail-closed contract of the issue.
        for good in 0..6usize {
            for error in [
                TransportError::Timeout { round: good as u32 },
                TransportError::Closed { round: good as u32 },
                TransportError::Protocol {
                    round: good as u32,
                    detail: "truncated frame".to_string(),
                },
            ] {
                let mut src = FlakySource {
                    inner: source_for(4, 8, &FaultPlan::new()),
                    good,
                    served: 0,
                    error,
                };
                let v = run_source_verdict(TransportAlgorithm::Kernel, &mut src, 8, &FaultPlan::new());
                assert!(
                    matches!(v, Verdict::Undecided { .. }),
                    "good={good}: {v}"
                );
            }
        }
    }

    #[test]
    fn violations_fire_identically_through_the_source() {
        let plan = FaultPlan::new().duplicate_deliveries(1, 3, 0);
        let mut src = source_for(13, 8, &plan);
        let v = run_source_verdict(TransportAlgorithm::Kernel, &mut src, 8, &plan);
        assert!(
            matches!(v, Verdict::ModelViolation { .. }),
            "duplicates must fail closed: {v}"
        );
        let plan = FaultPlan::new().disconnect(2);
        let mut src = source_for(9, 8, &plan);
        assert_eq!(
            run_source_verdict(TransportAlgorithm::HistoryTree, &mut src, 8, &plan),
            Verdict::ModelViolation {
                kind: ViolationKind::Connectivity,
                round: 2
            }
        );
    }

    #[test]
    fn transport_error_messages_name_the_round() {
        assert_eq!(
            TransportError::Timeout { round: 3 }.to_string(),
            "round 3 deadline elapsed"
        );
        assert_eq!(
            TransportError::Closed { round: 0 }.to_string(),
            "transport closed before round 0"
        );
        assert_eq!(
            TransportError::Protocol {
                round: 2,
                detail: "bad magic".to_string()
            }
            .to_string(),
            "protocol breach at round 2: bad magic"
        );
    }
}
