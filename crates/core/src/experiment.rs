//! Experiment harness: structured tables for the reproduction binaries.
//!
//! Every experiment binary produces one or more [`Table`]s that are both
//! printed as aligned markdown (for `EXPERIMENTS.md`) and serializable to
//! JSON (`--json`).

use core::fmt;
use serde::Serialize;

/// A table of experiment results.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Table {
    /// Experiment identifier, e.g. `"E8 (Theorem 1)"`.
    pub id: String,
    /// Human-readable caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells, one string per column.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given id, title and headers.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Appends a row of displayable values.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_display_row<T: fmt::Display>(&mut self, cells: &[T]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table as RFC-4180-style CSV (quoting cells containing
    /// commas, quotes or newlines), headers first.
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let render = |row: &[String]| -> String {
            row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(",")
        };
        out.push_str(&render(&self.headers));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as aligned GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("E0", "demo", &["n", "rounds"]);
        t.push_display_row(&[4, 3]);
        t.push_display_row(&[100, 5]);
        let md = t.to_markdown();
        assert!(md.starts_with("### E0 — demo"));
        assert!(md.contains("| n   | rounds |"));
        assert!(md.contains("| 100 | 5      |"));
        assert!(md.contains("|-----|--------|"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.push_row(vec!["x".into()]);
    }

    #[test]
    fn csv_rendering_with_quoting() {
        let mut t = Table::new("E0", "demo", &["name", "value"]);
        t.push_row(vec!["plain".into(), "1".into()]);
        t.push_row(vec!["with, comma".into(), "quo\"te".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with, comma\",\"quo\"\"te\"");
    }

    #[test]
    fn serializes_to_json() {
        let mut t = Table::new("E1", "json", &["x"]);
        t.push_row(vec!["1".into()]);
        let js = serde_json::to_string(&t).unwrap();
        assert!(js.contains("\"id\":\"E1\""));
        assert!(js.contains("\"rows\":[[\"1\"]]"));
    }
}
