//! Headline measurements: the empirical cost of anonymity.
//!
//! These functions produce the data behind the paper's results: counting
//! time under the worst-case adversary versus the closed-form bounds
//! (Theorems 1–2), the dissemination/counting gap (§5), the Corollary 1
//! chain construction, and the network-level indistinguishability that
//! Lemma 1 transfers from multigraphs to `G(PD)_2` graphs.

use crate::algorithms::{CountingError, KernelCounting};
use crate::bounds;
use anonet_graph::{metrics, ChainExtended, DynamicNetwork};
use anonet_multigraph::adversary::{TwinBuilder, TwinError};
use anonet_multigraph::transform;
use anonet_netsim::{run_full_information, ViewInterner};
use core::fmt;

/// Errors from the measurement harness.
#[derive(Debug)]
#[non_exhaustive]
pub enum CostError {
    /// Twin construction failed.
    Twin(TwinError),
    /// The counting algorithm failed unexpectedly.
    Counting(CountingError),
    /// PD2 transformation failed.
    Transform(anonet_graph::pd::PdError),
    /// A flooding/diameter probe found the network disconnected within
    /// its round budget — impossible for an in-model `G(PD)_2` image, so
    /// this names a harness bug instead of panicking on it.
    Disconnected,
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::Twin(e) => write!(f, "twin construction failed: {e}"),
            CostError::Counting(e) => write!(f, "counting failed: {e}"),
            CostError::Transform(e) => write!(f, "pd2 transform failed: {e}"),
            CostError::Disconnected => {
                write!(f, "pd2 network disconnected within the probe's round budget")
            }
        }
    }
}

impl std::error::Error for CostError {}

impl From<TwinError> for CostError {
    fn from(e: TwinError) -> Self {
        CostError::Twin(e)
    }
}

impl From<CountingError> for CostError {
    fn from(e: CountingError) -> Self {
        CostError::Counting(e)
    }
}

impl From<anonet_graph::pd::PdError> for CostError {
    fn from(e: anonet_graph::pd::PdError) -> Self {
        CostError::Transform(e)
    }
}

/// One data point of the counting-cost curve (Theorem 2's headline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct CountingCost {
    /// Network size `|W|`.
    pub n: u64,
    /// Rounds the optimal algorithm needed against the kernel adversary.
    pub measured_rounds: u32,
    /// The paper's lower bound `⌊log₃(2n+1)⌋ + 1`.
    pub bound_rounds: u32,
    /// The ambiguity horizon `⌊log₃(2n+1)⌋ - 1` sustained by the twins.
    pub horizon: u32,
}

/// Measures the optimal counting time for size `n` under the worst-case
/// (kernel) adversary, together with the matching bounds.
///
/// # Errors
///
/// Returns [`CostError`] if `n == 0` or the algorithm fails.
pub fn measure_counting_cost(n: u64) -> Result<CountingCost, CostError> {
    let pair = TwinBuilder::new().build(n)?;
    let outcome = KernelCounting::new().run(&pair.smaller, pair.horizon + 8)?;
    debug_assert_eq!(outcome.count, n);
    Ok(CountingCost {
        n,
        measured_rounds: outcome.rounds,
        bound_rounds: bounds::counting_rounds_lower_bound(n),
        horizon: pair.horizon,
    })
}

/// One data point of the dissemination-vs-counting gap (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct GapPoint {
    /// Network size `|V|` of the `G(PD)_2` image (leader + 2 relays + n).
    pub order: usize,
    /// Multigraph size `n = |W|`.
    pub n: u64,
    /// Measured dynamic diameter of the worst-case `G(PD)_2` image
    /// (dissemination completes within this many rounds).
    pub dissemination_rounds: u32,
    /// Rounds the optimal counting algorithm needed.
    pub counting_rounds: u32,
}

/// Measures flooding time and counting time on the *same* worst-case
/// `G(PD)_2` instance: dissemination stays `O(1)` (the dynamic diameter of
/// any `G(PD)_2` graph is at most 4) while counting grows with `log n`.
///
/// # Errors
///
/// Returns [`CostError`] if the construction or counting fails.
pub fn measure_gap(n: u64) -> Result<GapPoint, CostError> {
    let pair = TwinBuilder::new().build(n)?;
    let rounds = pair.horizon as usize + 2;
    let mut net = transform::to_pd2(&pair.smaller, rounds)?;
    let flood = metrics::flood(&mut net, 0, 0, 64)
        .duration()
        .ok_or(CostError::Disconnected)?;
    let outcome = KernelCounting::new().run(&pair.smaller, pair.horizon + 8)?;
    Ok(GapPoint {
        order: net.order(),
        n,
        dissemination_rounds: flood,
        counting_rounds: outcome.rounds,
    })
}

/// One data point of the network-level indistinguishability measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct ViewAgreement {
    /// Multigraph size `n`.
    pub n: u64,
    /// The multigraph-level ambiguity horizon (Lemma 5).
    pub horizon: u32,
    /// Rounds through which the `G(PD)_2` leaders' full-information views
    /// agree — no algorithm whatsoever can separate the twins earlier.
    pub agreement_rounds: u32,
    /// Extra static-chain nodes spliced before the leader (0 = plain
    /// `G(PD)_2`, Corollary 1 otherwise).
    pub chain: u32,
    /// Measured dynamic diameter of the (possibly chain-extended) network.
    pub diameter: u32,
}

/// Measures, at the network level, how long the leader's full-information
/// view fails to separate the size-`n` and size-`n+1` twins after the
/// Lemma 1 transformation (and optional Corollary 1 chain extension).
///
/// This is the strongest possible empirical form of the lower bound: the
/// full-information view majorizes every deterministic algorithm.
///
/// # Errors
///
/// Returns [`CostError`] on construction failure.
pub fn measure_view_agreement(n: u64, chain: u32) -> Result<ViewAgreement, CostError> {
    let pair = TwinBuilder::new().build(n)?;
    let rounds = pair.horizon as usize + 2;
    let small = transform::to_pd2(&pair.smaller, rounds)?;
    let large = transform::to_pd2(&pair.larger, rounds)?;
    let mut small = ChainExtended::new(small, chain as usize);
    let mut large = ChainExtended::new(large, chain as usize);

    let horizon_rounds = pair.horizon + 8 + 2 * chain;
    let mut interner = ViewInterner::new();
    let a = run_full_information(&mut small, horizon_rounds, &mut interner);
    let b = run_full_information(&mut large, horizon_rounds, &mut interner);
    let agreement = a.leader_agreement(&b, horizon_rounds as usize) as u32;

    let diameter = metrics::dynamic_diameter(&mut small, pair.horizon + 2, 256)
        .ok_or(CostError::Disconnected)?;

    Ok(ViewAgreement {
        n,
        horizon: pair.horizon,
        agreement_rounds: agreement,
        chain,
        diameter,
    })
}

/// Rounds the optimal algorithm needs under each adversary class — the
/// adversary ablation (worst-case vs fair-random vs static).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct AdversaryAblation {
    /// Network size.
    pub n: u64,
    /// Rounds against the kernel (worst-case) adversary.
    pub worst_case_rounds: u32,
    /// Mean rounds against the fair random adversary (over `samples`).
    pub random_rounds_mean_x100: u32,
    /// Maximum rounds observed against the random adversary.
    pub random_rounds_max: u32,
    /// Rounds against the static (round-0-frozen) adversary.
    pub static_rounds: u32,
}

/// Measures the adversary ablation for size `n` with `samples` random
/// draws (deterministic in `seed`).
///
/// # Errors
///
/// Returns [`CostError`] on construction or counting failure.
pub fn measure_adversary_ablation(
    n: u64,
    samples: u32,
    seed: u64,
) -> Result<AdversaryAblation, CostError> {
    use anonet_multigraph::adversary::{RandomDblAdversary, StaticDblAdversary};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let worst = measure_counting_cost(n)?.measured_rounds;
    let horizon_rounds = worst + 8;

    let mut random_total = 0u64;
    let mut random_max = 0u32;
    let mut adv = RandomDblAdversary::new(StdRng::seed_from_u64(seed));
    for _ in 0..samples.max(1) {
        let m = adv.generate(n, horizon_rounds as usize)?;
        let r = KernelCounting::new().run(&m, horizon_rounds)?.rounds;
        random_total += r as u64;
        random_max = random_max.max(r);
    }

    let m = StaticDblAdversary::new(StdRng::seed_from_u64(seed ^ 0xF00D)).generate(n)?;
    let static_rounds = KernelCounting::new().run(&m, horizon_rounds)?.rounds;

    Ok(AdversaryAblation {
        n,
        worst_case_rounds: worst,
        random_rounds_mean_x100: (random_total * 100 / samples.max(1) as u64) as u32,
        random_rounds_max: random_max,
        static_rounds,
    })
}

/// Per-round growth of the leader's knowledge under the worst-case
/// adversary — why the model needs unlimited bandwidth.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct StateGrowth {
    /// Network size.
    pub n: u64,
    /// Per round: messages delivered to the leader (edges).
    pub deliveries: Vec<usize>,
    /// Per round: distinct `(label, state)` pairs among them — the size of
    /// `C(v_l, r)` as a set.
    pub distinct_states: Vec<usize>,
}

/// Measures how the leader's per-round observation multiset grows on the
/// kernel adversary's instance: the number of *distinct* node states grows
/// geometrically up to the horizon, so any algorithm relaying full states
/// (as the optimal one must, in the worst case) needs messages of
/// unbounded size — the paper's unlimited-bandwidth assumption at work.
///
/// # Errors
///
/// Returns [`CostError`] for `n = 0`.
pub fn measure_state_growth(n: u64) -> Result<StateGrowth, CostError> {
    use anonet_multigraph::simulate::simulate;
    use anonet_multigraph::RoundColumns;
    let pair = TwinBuilder::new().build(n)?;
    let rounds = pair.horizon as usize + 2;
    let exec = simulate(&pair.smaller, rounds);
    let deliveries = exec.rounds.iter().map(RoundColumns::len).collect();
    let distinct_states = exec
        .rounds
        .iter()
        .map(|round| {
            // Columns are canonically sorted, so distinct (label, state)
            // pairs are exactly the runs.
            let mut distinct = 0usize;
            let mut prev = None;
            for d in round.iter() {
                if prev != Some(d) {
                    distinct += 1;
                    prev = Some(d);
                }
            }
            distinct
        })
        .collect();
    Ok(StateGrowth {
        n,
        deliveries,
        distinct_states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_cost_matches_bound_exactly() {
        for n in [1u64, 3, 4, 12, 13, 39, 40, 121, 365] {
            let c = measure_counting_cost(n).unwrap();
            assert_eq!(c.measured_rounds, c.bound_rounds, "tight at n={n}");
            assert_eq!(c.bound_rounds, c.horizon + 2);
        }
    }

    #[test]
    fn counting_cost_is_logarithmic() {
        let r10 = measure_counting_cost(10).unwrap().measured_rounds;
        let r100 = measure_counting_cost(100).unwrap().measured_rounds;
        let r1000 = measure_counting_cost(1000).unwrap().measured_rounds;
        assert!(r100 <= r10 + 3 && r1000 <= r100 + 3, "log growth");
        assert!(r1000 > r10, "but it does grow");
    }

    #[test]
    fn gap_widens_with_n() {
        let g10 = measure_gap(10).unwrap();
        let g400 = measure_gap(400).unwrap();
        assert!(g10.dissemination_rounds <= 4);
        assert!(g400.dissemination_rounds <= 4, "D is constant in n");
        assert!(
            g400.counting_rounds > g10.counting_rounds,
            "counting grows while dissemination does not"
        );
        assert_eq!(g400.order as u64, 400 + 3);
    }

    #[test]
    fn view_agreement_covers_horizon() {
        for n in [4u64, 13] {
            let v = measure_view_agreement(n, 0).unwrap();
            assert!(
                v.agreement_rounds > v.horizon,
                "network-level ambiguity lasts at least as long as the \
                 multigraph horizon (Lemma 1): n={n}, {v:?}"
            );
            assert!(v.agreement_rounds < v.horizon + 8, "but not forever: {v:?}");
        }
    }

    #[test]
    fn adversary_ablation_orders_adversaries() {
        let a = measure_adversary_ablation(40, 10, 7).unwrap();
        assert_eq!(a.worst_case_rounds, 5);
        assert!(a.random_rounds_max <= a.worst_case_rounds);
        assert!(a.random_rounds_mean_x100 <= a.worst_case_rounds * 100);
        assert!(a.static_rounds <= a.worst_case_rounds);
        assert!(a.random_rounds_mean_x100 >= 100, "at least one round");
    }

    #[test]
    fn state_growth_is_geometric_until_horizon() {
        let g = measure_state_growth(121).unwrap();
        // Distinct states per round: 1, then growing roughly 3x per round
        // until bounded by n and the history population.
        assert_eq!(g.distinct_states[0], 2, "two labels at round 0");
        for w in g.distinct_states.windows(2) {
            assert!(w[1] >= w[0], "distinct states never shrink: {g:?}");
        }
        let last = *g.distinct_states.last().unwrap();
        assert!(last >= 13, "wide state spectrum at the horizon: {g:?}");
        // Deliveries stay between n and 2n (1..=2 edges per node).
        for &d in &g.deliveries {
            assert!((121..=242).contains(&d));
        }
    }

    #[test]
    fn chain_extends_agreement_and_diameter() {
        let base = measure_view_agreement(4, 0).unwrap();
        let chained = measure_view_agreement(4, 5).unwrap();
        assert!(chained.diameter > base.diameter, "{base:?} vs {chained:?}");
        assert!(
            chained.agreement_rounds >= base.agreement_rounds + 5,
            "every chain hop delays the distinguishing information: \
             {base:?} vs {chained:?}"
        );
    }
}
