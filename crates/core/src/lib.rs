//! The cost of anonymity on dynamic networks.
//!
//! This crate is the top of the reproduction of *"Investigating the Cost
//! of Anonymity on Dynamic Networks"* (Di Luna & Baldoni, PODC 2015): a
//! library for measuring — exactly, on executable models — how much time
//! anonymity costs a leader that must count a synchronous dynamic network
//! under a worst-case adversary.
//!
//! The paper's result: on anonymous dynamic networks with constant dynamic
//! diameter `D`, counting takes `D + Ω(log |V|)` rounds even with
//! unlimited bandwidth, while dissemination completes in `D` rounds. The
//! `Ω(log |V|)` term is the cost of anonymity.
//!
//! * [`bounds`] — the closed-form bounds (Lemmas 4–5, Theorems 1–2,
//!   Corollary 1);
//! * [`algorithms`] — the optimal kernel counting algorithm (tight against
//!   the worst-case adversary), the O(1) degree-oracle algorithm of the
//!   Discussion, beacon layering, the exact view-counting rule for
//!   anonymous `G(PD)_2` graphs, and the exhaustive general-`k` rule;
//! * [`baselines`] — related-work algorithms: push-sum gossip \[8\],
//!   degree-bounded mass drain \[15\]/\[12\], exhaustive view enumeration;
//! * [`cost`] — the headline measurements (counting cost curve,
//!   dissemination gap, chain construction, network-level view agreement);
//! * [`experiment`] — result tables for the reproduction binaries.
//!
//! # Examples
//!
//! Measure the cost of anonymity for a 100-node network:
//!
//! ```
//! use anonet_core::cost::measure_counting_cost;
//!
//! let c = measure_counting_cost(100)?;
//! assert_eq!(c.measured_rounds, c.bound_rounds); // tight: ⌊log₃ 201⌋ + 1
//! assert_eq!(c.measured_rounds, 5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod baselines;
pub mod bounds;
pub mod cost;
pub mod experiment;
pub mod transport;
pub mod verdict;

/// Structured round tracing, re-exported from [`anonet_trace`]: implement
/// or pick a [`TraceSink`](anonet_trace::TraceSink) (`NullSink`,
/// `MemorySink`, `JsonlSink`) and pass it to any `*_with_sink` runner to
/// capture a replayable stream of [`RoundEvent`](anonet_trace::RoundEvent)s.
///
/// # Examples
///
/// Capture the kernel algorithm's shrinking candidate intervals:
///
/// ```
/// use anonet_core::algorithms::KernelCounting;
/// use anonet_core::trace::MemorySink;
/// use anonet_multigraph::adversary::TwinBuilder;
///
/// let pair = TwinBuilder::new().build(13)?;
/// let mut sink = MemorySink::new();
/// let (outcome, _) = KernelCounting::new().run_with_sink(&pair.smaller, 16, &mut sink)?;
/// assert_eq!(sink.events().len() as u32, outcome.rounds);
/// // The final event witnesses the unique count.
/// let last = sink.events().last().unwrap();
/// assert_eq!(last.candidate_lo, Some(13));
/// assert_eq!(last.candidate_hi, Some(13));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub use anonet_trace as trace;
