//! Integration tests for the fault-aware, fail-closed verdict runners.
//!
//! Two contracts are pinned here:
//!
//! 1. **Empty-plan byte-identity** — with no faults scheduled, the
//!    traced verdict runners emit JSONL byte-identical to the plain
//!    algorithms (`KernelCounting`, `GeneralKCounting`), in both the
//!    watchdogs-on and watchdogs-off arms. Robustness costs nothing on
//!    clean runs.
//! 2. **Fail-closed detection** — the silent failure modes that the
//!    `simulate` module's tests merely *observed* (dropped deliveries
//!    make the leader undercount, duplicated deliveries shift the census
//!    estimate upward) are *detected*: with watchdogs on, both convert
//!    into `Verdict::ModelViolation` instead of a wrong count.

use anonet_core::algorithms::{GeneralKCounting, KernelCounting};
use anonet_core::trace::{MemorySink, RoundEvent};
use anonet_core::verdict::{
    general_k_verdict_with_sink, kernel_verdict, kernel_verdict_with_sink, FaultPlan, Verdict,
};
use anonet_multigraph::adversary::TwinBuilder;
use anonet_multigraph::Census;

fn jsonl(events: &[RoundEvent]) -> String {
    events
        .iter()
        .map(|e| e.to_json_line() + "\n")
        .collect::<String>()
}

#[test]
fn empty_plan_kernel_traces_are_byte_identical() {
    for n in [1u64, 4, 13, 40] {
        let pair = TwinBuilder::new().build(n).unwrap();
        let mut plain_sink = MemorySink::new();
        let plain = KernelCounting::new()
            .run_with_sink(&pair.smaller, 16, &mut plain_sink)
            .unwrap();
        for watchdogs in [false, true] {
            let mut sink = MemorySink::new();
            let v = kernel_verdict_with_sink(&pair.smaller, 16, &FaultPlan::new(), watchdogs, &mut sink);
            assert_eq!(
                v,
                Verdict::Correct {
                    count: plain.0.count,
                    rounds: plain.0.rounds
                },
                "n={n} watchdogs={watchdogs}"
            );
            assert_eq!(
                jsonl(sink.events()),
                jsonl(plain_sink.events()),
                "n={n} watchdogs={watchdogs}: traces must be byte-identical"
            );
        }
    }
}

#[test]
fn empty_plan_kernel_traces_match_when_undecided() {
    // The horizon elapses before uniqueness: the verdict runner must
    // still emit exactly the plain algorithm's per-round events.
    let pair = TwinBuilder::new().build(13).unwrap();
    let mut plain_sink = MemorySink::new();
    let err = KernelCounting::new()
        .run_with_sink(&pair.smaller, 2, &mut plain_sink)
        .unwrap_err();
    assert!(matches!(
        err,
        anonet_core::algorithms::CountingError::Undecided { .. }
    ));
    for watchdogs in [false, true] {
        let mut sink = MemorySink::new();
        let v = kernel_verdict_with_sink(&pair.smaller, 2, &FaultPlan::new(), watchdogs, &mut sink);
        assert!(matches!(v, Verdict::Undecided { .. }), "{v}");
        assert_eq!(jsonl(sink.events()), jsonl(plain_sink.events()));
    }
}

#[test]
fn empty_plan_general_k_traces_are_byte_identical() {
    for n in [1u64, 3, 4, 9] {
        let pair = TwinBuilder::new().build(n).unwrap();
        let mut plain_sink = MemorySink::new();
        let plain = GeneralKCounting::new(5_000_000)
            .run_with_sink(&pair.smaller, 6, &mut plain_sink)
            .unwrap();
        for watchdogs in [false, true] {
            let mut sink = MemorySink::new();
            let v = general_k_verdict_with_sink(
                &pair.smaller,
                6,
                5_000_000,
                &FaultPlan::new(),
                watchdogs,
                &mut sink,
            );
            assert_eq!(v.count(), Some(plain.count), "n={n} watchdogs={watchdogs}");
            assert_eq!(
                jsonl(sink.events()),
                jsonl(plain_sink.events()),
                "n={n} watchdogs={watchdogs}: traces must be byte-identical"
            );
        }
    }
}

// Promoted from `simulate`'s `message_loss_is_detected_as_infeasibility`:
// that test observed that dropping a quarter of round 1's deliveries
// leaves the leader either infeasible or silently *undercounting*. The
// watchdogs turn the observation into a guarantee.
#[test]
fn dropped_deliveries_fail_closed_instead_of_undercounting() {
    let pair = TwinBuilder::new().build(13).unwrap();
    let plan = FaultPlan::new().drop_deliveries(1, 4, 0);
    let guarded = kernel_verdict(&pair.smaller, 8, &plan, true);
    assert!(
        matches!(guarded, Verdict::ModelViolation { .. }),
        "watchdogs must name the violation, got {guarded}"
    );
    // The unguarded leader reproduces the original observation: if it
    // decides at all, it undercounts — silently.
    let unguarded = kernel_verdict(&pair.smaller, 8, &plan, false);
    if let Some(count) = unguarded.count() {
        assert!(count < 13, "a dropped-message count undercounts");
    }
}

// Promoted from `simulate`'s `duplicated_messages_shift_the_census_estimate`:
// duplicating every round-0 delivery of a 3-node network inflates the
// census estimate. The watchdogs reject the inflated observations.
#[test]
fn duplicated_deliveries_fail_closed_instead_of_overcounting() {
    let m = Census::from_counts(vec![1, 1, 1]).unwrap().realize().unwrap();
    let plan = FaultPlan::new().duplicate_deliveries(0, 1, 0); // double round 0
    let guarded = kernel_verdict(&m, 6, &plan, true);
    assert!(
        matches!(guarded, Verdict::ModelViolation { .. }),
        "watchdogs must name the violation, got {guarded}"
    );
    // The unguarded leader reproduces the original observation through
    // its trace: the duplicated round's candidate interval sits strictly
    // above the honest one.
    let mut honest_sink = MemorySink::new();
    kernel_verdict_with_sink(&m, 6, &FaultPlan::new(), false, &mut honest_sink);
    let mut duped_sink = MemorySink::new();
    let unguarded = kernel_verdict_with_sink(&m, 6, &plan, false, &mut duped_sink);
    let honest = &honest_sink.events()[0];
    let duped = &duped_sink.events()[0];
    assert!(
        duped.candidate_lo.unwrap() > honest.candidate_lo.unwrap()
            && duped.candidate_hi.unwrap() > honest.candidate_hi.unwrap(),
        "duplicates inflate the estimate"
    );
    // And it never arrives at the true count.
    assert_ne!(unguarded.count(), Some(3), "{unguarded}");
}

#[test]
fn seeded_corpus_has_zero_silent_wrong_counts() {
    // A miniature of the exp_faults safety envelope: across seeded
    // plans, a guarded kernel run never reports a wrong count.
    let mut violations = 0u32;
    let mut correct = 0u32;
    for seed in 0..60u64 {
        let n = [4u64, 9, 13][(seed % 3) as usize];
        let pair = TwinBuilder::new().build(n).unwrap();
        let horizon = pair.horizon + 3;
        let plan = FaultPlan::seeded(seed, horizon, 1 + (seed % 3) as u32);
        match kernel_verdict(&pair.smaller, horizon, &plan, true) {
            Verdict::Correct { count, .. } => {
                assert_eq!(count, n, "seed {seed}: silent wrong count");
                correct += 1;
            }
            Verdict::ModelViolation { .. } => violations += 1,
            Verdict::Undecided { .. } => {}
        }
    }
    assert!(violations > 0, "the corpus must actually exercise faults");
    assert!(correct > 0, "some faults must be harmless (post-decision)");
}
