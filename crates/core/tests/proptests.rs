//! Property-based tests for the counting algorithms and bounds.

use anonet_core::algorithms::{run_degree_oracle, KernelCounting};
use anonet_core::baselines::mass_drain::run_mass_drain;
use anonet_core::bounds;
use anonet_core::cost::measure_counting_cost;
use anonet_graph::pd::{Pd2Layout, RandomPd2};
use anonet_multigraph::adversary::{RandomDblAdversary, TwinBuilder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernel_counting_is_correct_and_tight(n in 1u64..500) {
        let c = measure_counting_cost(n).unwrap();
        prop_assert_eq!(c.measured_rounds, c.bound_rounds);
        prop_assert_eq!(c.bound_rounds, bounds::counting_rounds_lower_bound(n));
        prop_assert_eq!(c.horizon + 2, c.bound_rounds);
    }

    #[test]
    fn kernel_counting_correct_on_random_instances(n in 1u64..80, rounds in 4usize..10, seed in any::<u64>()) {
        let mut adv = RandomDblAdversary::new(StdRng::seed_from_u64(seed));
        let m = adv.generate(n, rounds).unwrap();
        match KernelCounting::new().run(&m, rounds as u32 + 4) {
            Ok(out) => prop_assert_eq!(out.count, n),
            Err(_) => {
                // Undecided is only possible when the horizon covers the
                // ambiguity: the bound says this cannot happen past it.
                prop_assert!((rounds as u32 + 4) < bounds::counting_rounds_lower_bound(n));
            }
        }
    }

    #[test]
    fn counting_never_decides_before_the_bound_on_twins(n in 1u64..300) {
        let pair = TwinBuilder::new().build(n).unwrap();
        let early = bounds::counting_rounds_lower_bound(n) - 1;
        if early > 0 {
            prop_assert!(KernelCounting::new().run(&pair.smaller, early).is_err());
        }
    }

    #[test]
    fn degree_oracle_always_three_rounds(relays in 1usize..5, leaves in 1usize..40, seed in any::<u64>()) {
        let layout = Pd2Layout { relays, leaves };
        let net = RandomPd2::new(layout, StdRng::seed_from_u64(seed));
        let out = run_degree_oracle(net).unwrap();
        prop_assert_eq!(out.count as usize, layout.order());
        prop_assert_eq!(out.rounds, 3);
    }

    #[test]
    fn bounds_are_monotone(n in 1u64..100_000) {
        prop_assert!(bounds::counting_rounds_lower_bound(n + 1) >= bounds::counting_rounds_lower_bound(n));
        prop_assert!(bounds::corollary_rounds_lower_bound(5, n) >= bounds::counting_rounds_lower_bound(n));
        let h = bounds::ambiguity_horizon(n).unwrap();
        prop_assert_eq!(bounds::ambiguity_node_threshold(h) <= n, true);
    }

    #[test]
    fn mass_drain_monotone_and_bounded(n in 3usize..10, d_extra in 0u32..6, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = anonet_graph::generators::random_connected(n, 2, &mut rng);
        let d = g.max_degree() as u32 + d_extra;
        let net = anonet_graph::GraphSequence::constant(g);
        let run = run_mass_drain(net, d.max(1), 300, 0.5);
        // Collected mass is monotone and never exceeds n - 1.
        let mut last = 0.0f64;
        for &c in &run.collected {
            prop_assert!(c + 1e-9 >= last);
            prop_assert!(c <= n as f64 - 1.0 + 1e-9);
            last = c;
        }
    }
}
