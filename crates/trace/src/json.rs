//! Minimal dependency-free JSON reading and writing helpers.
//!
//! The workspace's vendored `serde_json` stand-in serializes but does
//! not parse, and the hand-rolled [`RoundEvent`](crate::RoundEvent)
//! parser only understands its own flat schema. Checkpoint journals
//! (see [`journal`](crate::journal)) need to replay *structured*
//! records — nested arrays of strings, objects of integers — so this
//! module provides the smallest JSON value model that covers them:
//! `null`, booleans, integers, strings, arrays and objects.
//!
//! Floating-point numbers are deliberately **rejected**: every consumer
//! in this workspace round-trips journal lines byte-for-byte, and float
//! formatting is the one JSON fragment where `parse ∘ render` is not
//! the identity. Keeping floats out makes "the journal replays exactly"
//! a structural guarantee instead of a numerical one.
//!
//! # Examples
//!
//! ```
//! use anonet_trace::json::JsonValue;
//!
//! let v = JsonValue::parse(r#"{"id":"fig3","rows":[["1","2"]],"micros":42}"#)?;
//! assert_eq!(v.get("id").and_then(JsonValue::as_str), Some("fig3"));
//! assert_eq!(v.get("micros").and_then(JsonValue::as_int), Some(42));
//! # Ok::<(), anonet_trace::json::JsonParseError>(())
//! ```

use core::fmt;

/// A parsed JSON value (integers only; floats are rejected — see the
/// [module documentation](self)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (any magnitude that fits `i128`).
    Int(i128),
    /// A string, with escapes resolved.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object; field order is preserved.
    Object(Vec<(String, JsonValue)>),
}

/// Error from [`JsonValue::parse`]: byte offset and reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub reason: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad JSON at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonParseError {}

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// control characters) — the escaping [`JsonValue::parse`] undoes.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, reason: impl Into<String>) -> Result<T, JsonParseError> {
        Err(JsonParseError {
            offset: self.pos,
            reason: reason.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", b as char))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(format!("expected `{word}`"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.integer(),
            Some(other) => self.err(format!("unexpected byte `{}`", other as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn integer(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return self.err("floating-point numbers are not supported");
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits and minus are ASCII");
        match text.parse::<i128>() {
            Ok(n) => Ok(JsonValue::Int(n)),
            Err(_) => self.err(format!("bad integer `{text}`")),
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = match self.peek() {
                        Some(b) => b,
                        None => return self.err("truncated escape"),
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let Some(h) = self.peek() else {
                                    return self.err("truncated \\u escape");
                                };
                                let Some(d) = (h as char).to_digit(16) else {
                                    return self.err("bad \\u escape");
                                };
                                code = code * 16 + d;
                                self.pos += 1;
                            }
                            let Some(c) = char::from_u32(code) else {
                                return self.err("bad \\u code point");
                            };
                            out.push(c);
                        }
                        other => {
                            return self.err(format!("bad escape `\\{}`", other as char))
                        }
                    }
                }
                Some(b) if b < 0x80 => {
                    if b < 0x20 {
                        return self.err("unescaped control character in string");
                    }
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Multi-byte UTF-8 sequence: 2-4 bytes, length from
                    // the leading byte.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return self.err("string is not valid UTF-8"),
                    };
                    let end = self.pos + len;
                    if end > self.bytes.len() {
                        return self.err("string is not valid UTF-8");
                    }
                    match core::str::from_utf8(&self.bytes[self.pos..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("string is not valid UTF-8"),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }
}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns [`JsonParseError`] with the byte offset of the first
    /// violation; floating-point literals are always rejected.
    pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing characters after value");
        }
        Ok(v)
    }

    /// Field lookup on [`JsonValue::Object`]; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The string payload of [`JsonValue::Str`]; `None` otherwise.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload of [`JsonValue::Int`]; `None` otherwise.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            JsonValue::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The items of [`JsonValue::Array`]; `None` otherwise.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::Int(42));
        assert_eq!(JsonValue::parse("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(
            JsonValue::parse("\"hi\"").unwrap(),
            JsonValue::Str("hi".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a":[1,[2,"x"]],"b":{"c":null}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0], JsonValue::Int(1));
        assert_eq!(
            a[1].as_array().unwrap()[1],
            JsonValue::Str("x".into())
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote\" back\\slash\nnew\tline\u{1} unicode\u{00e9}";
        let mut encoded = String::from('"');
        escape_into(original, &mut encoded);
        encoded.push('"');
        let parsed = JsonValue::parse(&encoded).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert!(JsonValue::parse("1.5").is_err());
        assert!(JsonValue::parse("1e3").is_err());
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("42 garbage").is_err());
        let err = JsonValue::parse("nul").unwrap_err();
        assert!(err.to_string().contains("null"));
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = JsonValue::parse(" { \"k\" :\n[ 1 , 2 ] }\t").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_array().unwrap().len(),
            2
        );
    }

    #[test]
    fn u_escape_parses() {
        assert_eq!(
            JsonValue::parse("\"\\u0041\\u00e9\"").unwrap().as_str(),
            Some("A\u{e9}")
        );
        assert!(JsonValue::parse(r#""\ud800""#).is_err(), "lone surrogate");
    }
}
