//! Structured per-round tracing for the anonet simulation stack.
//!
//! Every layer of the reproduction — the synchronous simulator
//! (`anonet-netsim`), the worst-case adversary and leader observation
//! machinery (`anonet-multigraph`), and the counting algorithms
//! (`anonet-core`) — can emit one [`RoundEvent`] per executed or observed
//! round into any [`TraceSink`]. Three sinks are provided:
//!
//! * [`NullSink`] — discards everything (the zero-cost default);
//! * [`MemorySink`] — collects events in memory for assertions;
//! * [`JsonlSink`] — streams events as JSON Lines for offline analysis
//!   and replay (see `docs/TRACING.md` for the schema and a worked
//!   replay example).
//!
//! The crate is dependency-free: JSONL emission and parsing are
//! hand-rolled for the flat event schema, so the trace layer can sit at
//! the very bottom of the workspace dependency graph.
//!
//! Two sibling modules extend the JSONL machinery beyond round events:
//! [`journal`] provides crash-safe line-atomic appends with per-line
//! fsync (the substrate of the experiment runner's checkpoint/resume
//! sidecars), and [`json`] a minimal JSON value parser for replaying
//! structured journal records without external dependencies.
//!
//! # Examples
//!
//! Record two rounds, serialize them, and replay the stream:
//!
//! ```
//! use anonet_trace::{JsonlSink, MemorySink, RoundEvent, TraceSink};
//!
//! let events = [
//!     RoundEvent::new(0).deliveries(6).leader_inbox(3),
//!     RoundEvent::new(1).candidates(4, 13).kernel_dim(1),
//! ];
//!
//! let mut jsonl = JsonlSink::new(Vec::new());
//! for e in &events {
//!     jsonl.record(e);
//! }
//! let text = String::from_utf8(jsonl.into_inner())?;
//! assert!(text.starts_with(r#"{"round":0,"deliveries":6,"leader_inbox":3}"#));
//!
//! let replayed = MemorySink::replay_jsonl(&text)?;
//! assert_eq!(replayed.events(), &events);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod journal;

use core::fmt;
use std::io::{self, Write};

/// One traced round of a simulation, observation, or algorithm run.
///
/// Every field except [`round`](RoundEvent::round) is optional: each
/// layer fills in the facets it knows. The simulator reports message
/// accounting (`deliveries`, `max_inbox`, `leader_inbox`); the counting
/// algorithms report solver state (`kernel_dim`, `candidate_lo/hi`,
/// `candidate_count`, `state_size`); adversary-driven runs label the
/// adversary's per-round choice (`adversary`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundEvent {
    /// The absolute round index.
    pub round: u32,
    /// Messages delivered in this round (sum of all inbox sizes).
    pub deliveries: Option<u64>,
    /// The largest inbox of the round.
    pub max_inbox: Option<u64>,
    /// The leader's inbox size this round (its degree).
    pub leader_inbox: Option<u64>,
    /// Dimension of the kernel of the observation system `M_r` after this
    /// round — the degrees of freedom the adversary still controls.
    pub kernel_dim: Option<u64>,
    /// Smallest population consistent with the observations so far.
    pub candidate_lo: Option<i64>,
    /// Largest population consistent with the observations so far.
    pub candidate_hi: Option<i64>,
    /// Number of candidate populations still consistent (exact rules that
    /// enumerate solutions report a count rather than an interval).
    pub candidate_count: Option<u64>,
    /// A label for the adversary's choice this round (e.g. the census or
    /// topology family it played).
    pub adversary: Option<String>,
    /// Size of the algorithm's round state (e.g. distinct `(label,
    /// state)` pairs in the leader's observation, or solver unknowns).
    pub state_size: Option<u64>,
    /// A label for injected faults active this round (e.g.
    /// `"drop(4+0)"`, `"crash(2)+dup(3+1)"`); set by the fault-injection
    /// layer, absent on clean runs.
    pub fault: Option<String>,
    /// A label for a model violation detected this round by a watchdog
    /// (e.g. `"connectivity"`, `"census-conservation"`); absent when no
    /// detector fired.
    pub violation: Option<String>,
    /// Packed fitness of an adversary-search candidate (verdict class in
    /// the high bits, termination round in the low bits); set by the
    /// coverage-guided search when it records an archive improvement.
    pub fitness: Option<u64>,
    /// The coverage-map key an adversary-search candidate landed in
    /// (e.g. `"kernel|violation:connectivity|r2|crash,drop"`); set
    /// alongside [`fitness`](RoundEvent::fitness).
    pub coverage: Option<String>,
    /// How the decision round's kernel dimension was certified by a fast
    /// solver backend (`"crt"` for a reconstructed CRT certificate,
    /// `"exact-replay"` for the one-shot exact re-elimination); absent on
    /// non-decision rounds, on the exact backend, and unless the
    /// algorithm opts in to certification tracing.
    pub certification: Option<String>,
    /// Deliveries observed on the history-tree *spine* (the all-`{1,2}`
    /// history `T^r`) this round; set by the history-tree counting
    /// leader, whose alternating spine sums decide the count the round
    /// this drops to zero. Absent for the solver-based algorithms.
    pub spine: Option<u64>,
    /// Peer connections that were live when this round's barrier
    /// assembled; set by the socketed runtime (`anonet-net`), absent on
    /// in-memory runs.
    pub connections: Option<u64>,
    /// Retransmitted frames the round barrier deduplicated (first-wins)
    /// while assembling this round; set by the socketed runtime.
    pub retransmits: Option<u64>,
    /// A label for wire-level events observed this round (e.g.
    /// `"churn(peer 2)"`, `"timeout(missing [5])"`); set by the
    /// socketed runtime, absent on clean rounds and in-memory runs.
    pub net: Option<String>,
}

impl RoundEvent {
    /// Creates an event for `round` with every facet unset.
    pub fn new(round: u32) -> RoundEvent {
        RoundEvent {
            round,
            ..RoundEvent::default()
        }
    }

    /// Sets the delivery count.
    #[must_use]
    pub fn deliveries(mut self, n: u64) -> RoundEvent {
        self.deliveries = Some(n);
        self
    }

    /// Sets the maximum inbox size.
    #[must_use]
    pub fn max_inbox(mut self, n: u64) -> RoundEvent {
        self.max_inbox = Some(n);
        self
    }

    /// Sets the leader inbox size.
    #[must_use]
    pub fn leader_inbox(mut self, n: u64) -> RoundEvent {
        self.leader_inbox = Some(n);
        self
    }

    /// Sets the observation-system kernel dimension.
    #[must_use]
    pub fn kernel_dim(mut self, d: u64) -> RoundEvent {
        self.kernel_dim = Some(d);
        self
    }

    /// Sets the feasible candidate population interval `[lo, hi]`.
    #[must_use]
    pub fn candidates(mut self, lo: i64, hi: i64) -> RoundEvent {
        self.candidate_lo = Some(lo);
        self.candidate_hi = Some(hi);
        self
    }

    /// Sets the number of consistent candidate populations.
    #[must_use]
    pub fn candidate_count(mut self, n: u64) -> RoundEvent {
        self.candidate_count = Some(n);
        self
    }

    /// Sets the adversary-choice label.
    #[must_use]
    pub fn adversary(mut self, label: impl Into<String>) -> RoundEvent {
        self.adversary = Some(label.into());
        self
    }

    /// Sets the algorithm state size.
    #[must_use]
    pub fn state_size(mut self, n: u64) -> RoundEvent {
        self.state_size = Some(n);
        self
    }

    /// Sets the injected-fault label.
    #[must_use]
    pub fn fault(mut self, label: impl Into<String>) -> RoundEvent {
        self.fault = Some(label.into());
        self
    }

    /// Sets the detected-violation label.
    #[must_use]
    pub fn violation(mut self, label: impl Into<String>) -> RoundEvent {
        self.violation = Some(label.into());
        self
    }

    /// Sets the search-candidate fitness.
    #[must_use]
    pub fn fitness(mut self, f: u64) -> RoundEvent {
        self.fitness = Some(f);
        self
    }

    /// Sets the coverage-map key.
    #[must_use]
    pub fn coverage(mut self, key: impl Into<String>) -> RoundEvent {
        self.coverage = Some(key.into());
        self
    }

    /// Sets the decision-round certification method label.
    #[must_use]
    pub fn certification(mut self, label: impl Into<String>) -> RoundEvent {
        self.certification = Some(label.into());
        self
    }

    /// Sets the history-tree spine delivery count.
    #[must_use]
    pub fn spine(mut self, n: u64) -> RoundEvent {
        self.spine = Some(n);
        self
    }

    /// Sets the live-connection count at barrier assembly.
    #[must_use]
    pub fn connections(mut self, n: u64) -> RoundEvent {
        self.connections = Some(n);
        self
    }

    /// Sets the deduplicated-retransmission count.
    #[must_use]
    pub fn retransmits(mut self, n: u64) -> RoundEvent {
        self.retransmits = Some(n);
        self
    }

    /// Sets the wire-level event label.
    #[must_use]
    pub fn net(mut self, label: impl Into<String>) -> RoundEvent {
        self.net = Some(label.into());
        self
    }

    /// Renders the event as one compact JSON object (no trailing
    /// newline). Unset facets are omitted; field order is fixed, so equal
    /// events render to identical lines.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(64);
        s.push_str("{\"round\":");
        s.push_str(&self.round.to_string());
        let num = |s: &mut String, key: &str, v: Option<i128>| {
            if let Some(v) = v {
                s.push_str(",\"");
                s.push_str(key);
                s.push_str("\":");
                s.push_str(&v.to_string());
            }
        };
        num(&mut s, "deliveries", self.deliveries.map(i128::from));
        num(&mut s, "max_inbox", self.max_inbox.map(i128::from));
        num(&mut s, "leader_inbox", self.leader_inbox.map(i128::from));
        num(&mut s, "kernel_dim", self.kernel_dim.map(i128::from));
        num(&mut s, "candidate_lo", self.candidate_lo.map(i128::from));
        num(&mut s, "candidate_hi", self.candidate_hi.map(i128::from));
        num(
            &mut s,
            "candidate_count",
            self.candidate_count.map(i128::from),
        );
        string_field(&mut s, "adversary", self.adversary.as_deref());
        num(&mut s, "state_size", self.state_size.map(i128::from));
        string_field(&mut s, "fault", self.fault.as_deref());
        string_field(&mut s, "violation", self.violation.as_deref());
        num(&mut s, "fitness", self.fitness.map(i128::from));
        string_field(&mut s, "coverage", self.coverage.as_deref());
        string_field(&mut s, "certification", self.certification.as_deref());
        // New facets append here so every pre-existing event keeps its
        // exact byte form (unset facets are omitted).
        num(&mut s, "spine", self.spine.map(i128::from));
        num(&mut s, "connections", self.connections.map(i128::from));
        num(&mut s, "retransmits", self.retransmits.map(i128::from));
        string_field(&mut s, "net", self.net.as_deref());
        s.push('}');
        s
    }

    /// Parses one line produced by [`RoundEvent::to_json_line`].
    ///
    /// This is a schema-specific parser (flat object, known keys), not a
    /// general JSON parser; it exists so traces can be replayed without
    /// external dependencies.
    ///
    /// # Errors
    ///
    /// Returns [`TraceParseError`] on malformed lines or unknown keys.
    pub fn from_json_line(line: &str) -> Result<RoundEvent, TraceParseError> {
        let line = line.trim();
        let inner = line
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| TraceParseError::new(line, "not a JSON object"))?;
        let mut event = RoundEvent::default();
        let mut saw_round = false;
        let mut rest = inner;
        while !rest.is_empty() {
            rest = rest.trim_start_matches(',');
            let key_start = rest
                .strip_prefix('"')
                .ok_or_else(|| TraceParseError::new(line, "expected key"))?;
            let key_end = key_start
                .find('"')
                .ok_or_else(|| TraceParseError::new(line, "unterminated key"))?;
            let key = &key_start[..key_end];
            let after_key = key_start[key_end + 1..]
                .strip_prefix(':')
                .ok_or_else(|| TraceParseError::new(line, "expected ':'"))?;
            if matches!(
                key,
                "adversary" | "fault" | "violation" | "coverage" | "certification" | "net"
            ) {
                let body = after_key
                    .strip_prefix('"')
                    .ok_or_else(|| TraceParseError::new(line, "expected a string value"))?;
                let (value, end) = parse_string_body(line, body)?;
                match key {
                    "adversary" => event.adversary = Some(value),
                    "fault" => event.fault = Some(value),
                    "coverage" => event.coverage = Some(value),
                    "certification" => event.certification = Some(value),
                    "net" => event.net = Some(value),
                    _ => event.violation = Some(value),
                }
                rest = &body[end + 1..];
                continue;
            }
            let value_end = after_key.find(',').unwrap_or(after_key.len());
            let raw = &after_key[..value_end];
            let n: i128 = raw
                .parse()
                .map_err(|_| TraceParseError::new(line, "expected a number"))?;
            match key {
                "round" => {
                    event.round = u32::try_from(n)
                        .map_err(|_| TraceParseError::new(line, "round out of range"))?;
                    saw_round = true;
                }
                "deliveries" => event.deliveries = Some(n as u64),
                "max_inbox" => event.max_inbox = Some(n as u64),
                "leader_inbox" => event.leader_inbox = Some(n as u64),
                "kernel_dim" => event.kernel_dim = Some(n as u64),
                "candidate_lo" => event.candidate_lo = Some(n as i64),
                "candidate_hi" => event.candidate_hi = Some(n as i64),
                "candidate_count" => event.candidate_count = Some(n as u64),
                "state_size" => event.state_size = Some(n as u64),
                "fitness" => event.fitness = Some(n as u64),
                "spine" => event.spine = Some(n as u64),
                "connections" => event.connections = Some(n as u64),
                "retransmits" => event.retransmits = Some(n as u64),
                other => {
                    return Err(TraceParseError::new(
                        line,
                        format!("unknown key `{other}`"),
                    ))
                }
            }
            rest = &after_key[value_end..];
        }
        if !saw_round {
            return Err(TraceParseError::new(line, "missing `round`"));
        }
        Ok(event)
    }
}

/// Appends `,"key":"escaped value"` to `s` when `value` is set.
fn string_field(s: &mut String, key: &str, value: Option<&str>) {
    let Some(v) = value else { return };
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":\"");
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

/// Parses an escaped JSON string body (after the opening quote),
/// returning the decoded value and the byte index of the closing quote.
fn parse_string_body(line: &str, body: &str) -> Result<(String, usize), TraceParseError> {
    let mut value = String::new();
    let mut chars = body.char_indices();
    loop {
        match chars.next() {
            Some((i, '"')) => return Ok((value, i)),
            Some((_, '\\')) => match chars.next() {
                Some((_, '"')) => value.push('"'),
                Some((_, '\\')) => value.push('\\'),
                Some((_, 'n')) => value.push('\n'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, h) = chars
                            .next()
                            .ok_or_else(|| TraceParseError::new(line, "truncated \\u escape"))?;
                        code = code * 16
                            + h.to_digit(16)
                                .ok_or_else(|| TraceParseError::new(line, "bad \\u escape"))?;
                    }
                    value.push(
                        char::from_u32(code)
                            .ok_or_else(|| TraceParseError::new(line, "bad \\u code point"))?,
                    );
                }
                _ => return Err(TraceParseError::new(line, "bad escape")),
            },
            Some((_, c)) => value.push(c),
            None => return Err(TraceParseError::new(line, "unterminated string")),
        }
    }
}

/// Error from [`RoundEvent::from_json_line`] / [`MemorySink::replay_jsonl`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    line: String,
    reason: String,
}

impl TraceParseError {
    fn new(line: &str, reason: impl Into<String>) -> TraceParseError {
        TraceParseError {
            line: line.to_string(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad trace line `{}`: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceParseError {}

/// A consumer of [`RoundEvent`]s.
///
/// Implementations should be cheap when unused: the simulator and
/// algorithms call [`record`](TraceSink::record) once per round
/// unconditionally, and [`NullSink`] makes that a no-op.
pub trait TraceSink {
    /// Consumes one round event.
    fn record(&mut self, event: &RoundEvent);

    /// Flushes any buffered output (no-op by default).
    fn flush(&mut self) {}
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn record(&mut self, event: &RoundEvent) {
        (**self).record(event);
    }

    fn flush(&mut self) {
        (**self).flush();
    }
}

/// Discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: &RoundEvent) {}
}

/// Collects events in memory.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Vec<RoundEvent>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// The recorded events, in record order.
    pub fn events(&self) -> &[RoundEvent] {
        &self.events
    }

    /// Consumes the sink, returning the recorded events.
    pub fn into_events(self) -> Vec<RoundEvent> {
        self.events
    }

    /// Rebuilds a sink from a JSONL trace (blank lines are skipped) —
    /// the inverse of streaming the same events through [`JsonlSink`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceParseError`] on the first malformed line.
    pub fn replay_jsonl(text: &str) -> Result<MemorySink, TraceParseError> {
        let mut sink = MemorySink::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let event = RoundEvent::from_json_line(line)?;
            sink.record(&event);
        }
        Ok(sink)
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: &RoundEvent) {
        self.events.push(event.clone());
    }
}

/// Streams events as JSON Lines to any [`Write`] target.
///
/// Write failures are deferred: they do not panic during `record`, and
/// surface from [`JsonlSink::finish`] (or are dropped with the sink).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    error: Option<io::Error>,
}

impl JsonlSink<io::BufWriter<std::fs::File>> {
    /// Creates a sink writing to a freshly created (truncated) file.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<std::path::Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(io::BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            writer,
            error: None,
        }
    }

    /// Flushes and returns the writer, surfacing any deferred write
    /// error.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered while recording or
    /// flushing.
    pub fn finish(mut self) -> io::Result<W> {
        self.flush();
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.writer),
        }
    }

    /// Returns the writer without flushing or error-checking.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &RoundEvent) {
        if self.error.is_some() {
            return;
        }
        let mut line = event.to_json_line();
        line.push('\n');
        if let Err(e) = self.writer.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.writer.flush() {
                self.error = Some(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RoundEvent {
        RoundEvent::new(3)
            .deliveries(12)
            .max_inbox(4)
            .leader_inbox(2)
            .kernel_dim(1)
            .candidates(-5, 40)
            .candidate_count(7)
            .adversary("kernel: s_3 + k_3 \"twin\"")
            .state_size(9)
    }

    #[test]
    fn json_roundtrip_full_event() {
        let e = sample();
        let line = e.to_json_line();
        assert_eq!(RoundEvent::from_json_line(&line).unwrap(), e);
    }

    #[test]
    fn json_roundtrip_sparse_event() {
        let e = RoundEvent::new(0).leader_inbox(3);
        let line = e.to_json_line();
        assert_eq!(line, r#"{"round":0,"leader_inbox":3}"#);
        assert_eq!(RoundEvent::from_json_line(&line).unwrap(), e);
    }

    #[test]
    fn json_roundtrip_fault_and_violation() {
        let e = RoundEvent::new(2)
            .deliveries(5)
            .fault("drop(4+0)+dup(3+1)")
            .violation("census-conservation");
        let line = e.to_json_line();
        assert_eq!(
            line,
            r#"{"round":2,"deliveries":5,"fault":"drop(4+0)+dup(3+1)","violation":"census-conservation"}"#
        );
        assert_eq!(RoundEvent::from_json_line(&line).unwrap(), e);
        // Escapes work in the new string fields too.
        let tricky = RoundEvent::new(0).fault("a\"b\\c\nd");
        let line = tricky.to_json_line();
        assert_eq!(RoundEvent::from_json_line(&line).unwrap(), tricky);
    }

    #[test]
    fn json_roundtrip_search_facets() {
        let e = RoundEvent::new(7)
            .adversary("n=9")
            .fault("crash(2)")
            .fitness((2 << 32) | 5)
            .coverage("kernel|violation:connectivity|r2|crash");
        let line = e.to_json_line();
        assert_eq!(
            line,
            r#"{"round":7,"adversary":"n=9","fault":"crash(2)","fitness":8589934597,"coverage":"kernel|violation:connectivity|r2|crash"}"#
        );
        assert_eq!(RoundEvent::from_json_line(&line).unwrap(), e);
        // Unset search facets are omitted, keeping pre-search traces
        // byte-identical.
        let plain = sample().to_json_line();
        assert!(!plain.contains("fitness") && !plain.contains("coverage"));
    }

    #[test]
    fn clean_events_render_without_fault_fields() {
        // The fault/violation keys are omitted when unset, so traces of
        // unfaulted runs are byte-identical to pre-fault-layer traces.
        let line = sample().to_json_line();
        assert!(!line.contains("fault"));
        assert!(!line.contains("violation"));
    }

    #[test]
    fn json_roundtrip_certification_facet() {
        let e = RoundEvent::new(4)
            .candidates(13, 13)
            .kernel_dim(1)
            .certification("crt");
        let line = e.to_json_line();
        assert_eq!(
            line,
            r#"{"round":4,"kernel_dim":1,"candidate_lo":13,"candidate_hi":13,"certification":"crt"}"#
        );
        assert_eq!(RoundEvent::from_json_line(&line).unwrap(), e);
        let replay = RoundEvent::from_json_line(
            r#"{"round":4,"certification":"exact-replay"}"#,
        )
        .unwrap();
        assert_eq!(replay.certification.as_deref(), Some("exact-replay"));
        // Unset certification is omitted, keeping pre-CRT traces
        // byte-identical.
        assert!(!sample().to_json_line().contains("certification"));
    }

    #[test]
    fn json_roundtrip_spine_facet() {
        let e = RoundEvent::new(3)
            .deliveries(26)
            .candidates(11, 13)
            .spine(2);
        let line = e.to_json_line();
        assert_eq!(
            line,
            r#"{"round":3,"deliveries":26,"candidate_lo":11,"candidate_hi":13,"spine":2}"#
        );
        assert_eq!(RoundEvent::from_json_line(&line).unwrap(), e);
        // A dead spine still renders (0 is the decision signal, not an
        // unset facet)…
        let dead = RoundEvent::new(5).spine(0);
        assert_eq!(dead.to_json_line(), r#"{"round":5,"spine":0}"#);
        assert_eq!(RoundEvent::from_json_line(&dead.to_json_line()).unwrap(), dead);
        // …while unset spine is omitted, keeping solver-algorithm traces
        // byte-identical to their pre-history-tree form.
        assert!(!sample().to_json_line().contains("spine"));
    }

    #[test]
    fn json_roundtrip_net_facets() {
        let e = RoundEvent::new(2)
            .deliveries(8)
            .connections(5)
            .retransmits(3)
            .net("churn(peer 2)");
        let line = e.to_json_line();
        assert_eq!(
            line,
            r#"{"round":2,"deliveries":8,"connections":5,"retransmits":3,"net":"churn(peer 2)"}"#
        );
        assert_eq!(RoundEvent::from_json_line(&line).unwrap(), e);
        // A timeout label with brackets survives the escape round trip.
        let t = RoundEvent::new(3).net("timeout(missing [5, 7])");
        assert_eq!(RoundEvent::from_json_line(&t.to_json_line()).unwrap(), t);
        // Unset net facets are omitted, keeping in-memory traces
        // byte-identical to their pre-socket form.
        let plain = sample().to_json_line();
        assert!(
            !plain.contains("connections")
                && !plain.contains("retransmits")
                && !plain.contains("\"net\"")
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(RoundEvent::from_json_line("not json").is_err());
        assert!(RoundEvent::from_json_line("{}").is_err(), "round required");
        assert!(RoundEvent::from_json_line(r#"{"round":1,"bogus":2}"#).is_err());
        assert!(RoundEvent::from_json_line(r#"{"round":"x"}"#).is_err());
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let mut sink = MemorySink::new();
        for r in 0..4 {
            sink.record(&RoundEvent::new(r).deliveries(u64::from(r) * 2));
        }
        assert_eq!(sink.events().len(), 4);
        assert_eq!(sink.events()[2].round, 2);
        assert_eq!(sink.events()[2].deliveries, Some(4));
    }

    #[test]
    fn jsonl_stream_replays_exactly() {
        let events: Vec<RoundEvent> = (0..5)
            .map(|r| {
                RoundEvent::new(r)
                    .deliveries(u64::from(r))
                    .candidates(i64::from(r), 2 * i64::from(r) + 1)
            })
            .collect();
        let mut jsonl = JsonlSink::new(Vec::new());
        for e in &events {
            jsonl.record(e);
        }
        let text = String::from_utf8(jsonl.finish().unwrap()).unwrap();
        assert_eq!(text.lines().count(), 5);
        let replayed = MemorySink::replay_jsonl(&text).unwrap();
        assert_eq!(replayed.events(), events.as_slice());
    }

    #[test]
    fn null_sink_is_a_noop() {
        let mut sink = NullSink;
        sink.record(&sample());
        sink.flush();
    }

    #[test]
    fn sink_usable_through_mut_ref() {
        fn feed<S: TraceSink>(mut sink: S) {
            sink.record(&RoundEvent::new(0));
        }
        let mut mem = MemorySink::new();
        feed(&mut mem);
        assert_eq!(mem.events().len(), 1);
    }
}
