//! Crash-safe JSONL journals: line-atomic append with per-line fsync.
//!
//! The experiment grids in `anonet-bench` checkpoint every completed
//! cell to a `*.checkpoint.jsonl` sidecar so that an interrupted run can
//! be resumed without recomputing finished work. The durability
//! contract of this module is what makes that safe:
//!
//! * **line-atomic append** — each record is written with a *single*
//!   `write` call of the full `line + '\n'`, so a crash between appends
//!   never interleaves or splits records;
//! * **fsync-on-line** — [`JournalWriter::append_line`] calls
//!   `sync_data` after the write, so a record that was reported as
//!   appended survives a `SIGKILL` (and, modulo the disk's own cache, a
//!   power loss);
//! * **tolerant replay** — [`read_journal`] returns every complete
//!   (newline-terminated) line, and reports a trailing unterminated
//!   fragment separately instead of failing: a kill mid-`write` at
//!   worst loses the final record, never the journal.
//!
//! The journal format itself is the caller's business — lines are
//! opaque here; `anonet-bench` stores one JSON object per completed
//! cell and parses it back with [`json`](crate::json).
//!
//! # Examples
//!
//! ```no_run
//! use anonet_trace::journal::{read_journal, JournalWriter};
//!
//! let mut w = JournalWriter::append("grid.checkpoint.jsonl")?;
//! w.append_line(r#"{"index":0,"id":"fig3"}"#)?;
//!
//! let replay = read_journal("grid.checkpoint.jsonl")?;
//! assert_eq!(replay.lines.len(), 1);
//! assert!(replay.truncated_tail.is_none());
//! # Ok::<(), std::io::Error>(())
//! ```

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// An append-only journal file with per-line durability (see the
/// [module documentation](self)).
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
}

impl JournalWriter {
    /// Opens `path` for appending, creating it (and not truncating it)
    /// as needed.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be opened.
    pub fn append(path: impl AsRef<Path>) -> io::Result<JournalWriter> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(JournalWriter { file, path })
    }

    /// The path this journal writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record durably: a single write of `line + '\n'`
    /// followed by `sync_data`.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidInput`] if `line` contains a
    /// newline (it would forge record boundaries), or the underlying
    /// write/sync error.
    pub fn append_line(&mut self, line: &str) -> io::Result<()> {
        if line.contains('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "journal records must be single lines",
            ));
        }
        let mut record = String::with_capacity(line.len() + 1);
        record.push_str(line);
        record.push('\n');
        // One write call for the whole record keeps the append atomic
        // with respect to concurrent readers and kill signals.
        self.file.write_all(record.as_bytes())?;
        self.file.sync_data()
    }
}

/// The result of replaying a journal file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRead {
    /// Every complete (newline-terminated) line, in file order.
    pub lines: Vec<String>,
    /// A trailing fragment with no terminating newline — evidence of a
    /// write cut short by a crash. Callers should ignore (and may
    /// re-compute) the record it belonged to.
    pub truncated_tail: Option<String>,
}

/// Reads a journal written by [`JournalWriter`], separating complete
/// lines from a torn trailing fragment.
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be read, or
/// [`io::ErrorKind::InvalidData`] if a *complete* line is not valid
/// UTF-8 (torn tails are reported lossily, never as an error).
pub fn read_journal(path: impl AsRef<Path>) -> io::Result<JournalRead> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut lines = Vec::new();
    let mut rest: &[u8] = &bytes;
    while let Some(nl) = rest.iter().position(|&b| b == b'\n') {
        let line = &rest[..nl];
        rest = &rest[nl + 1..];
        match core::str::from_utf8(line) {
            Ok(s) => lines.push(s.to_string()),
            Err(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "journal contains a complete line that is not valid UTF-8",
                ))
            }
        }
    }
    let truncated_tail = if rest.is_empty() {
        None
    } else {
        Some(String::from_utf8_lossy(rest).into_owned())
    };
    Ok(JournalRead {
        lines,
        truncated_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("anonet-journal-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn append_then_read_round_trips() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut w = JournalWriter::append(&path).unwrap();
        assert_eq!(w.path(), path.as_path());
        w.append_line(r#"{"index":0}"#).unwrap();
        w.append_line(r#"{"index":1}"#).unwrap();
        drop(w);
        // Re-opening appends rather than truncating.
        let mut w = JournalWriter::append(&path).unwrap();
        w.append_line(r#"{"index":2}"#).unwrap();
        drop(w);
        let r = read_journal(&path).unwrap();
        assert_eq!(r.lines.len(), 3);
        assert_eq!(r.lines[2], r#"{"index":2}"#);
        assert_eq!(r.truncated_tail, None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn embedded_newline_is_rejected() {
        let path = temp_path("newline");
        let _ = std::fs::remove_file(&path);
        let mut w = JournalWriter::append(&path).unwrap();
        let err = w.append_line("two\nlines").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        drop(w);
        assert_eq!(read_journal(&path).unwrap().lines.len(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_reported_not_fatal() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, b"{\"index\":0}\n{\"index\":1}\n{\"ind").unwrap();
        let r = read_journal(&path).unwrap();
        assert_eq!(r.lines.len(), 2);
        assert_eq!(r.truncated_tail.as_deref(), Some("{\"ind"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_journal_reads_empty() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let r = read_journal(&path).unwrap();
        assert!(r.lines.is_empty());
        assert!(r.truncated_tail.is_none());
        std::fs::remove_file(&path).unwrap();
    }
}
