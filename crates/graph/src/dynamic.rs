//! Dynamic graphs: infinite sequences of per-round topologies.
//!
//! Definition 1 of the paper: a dynamic graph `G = {G_0, G_1, …}` is an
//! infinite sequence of graphs over a fixed node set, one per synchronous
//! round. [`DynamicNetwork`] is the trait every topology source implements —
//! precomputed sequences, random generators and worst-case adversaries
//! alike. Implementors may be stateful (`&mut self`) because adaptive
//! adversaries choose `G_r` on the fly.

use crate::graph::Graph;

/// A source of per-round communication graphs over a fixed node set.
///
/// Node `0` is the leader. Implementations must return graphs of constant
/// [`order`](DynamicNetwork::order) and should keep every round connected
/// (1-interval connectivity); [`check_interval_connectivity`] verifies this
/// on a window.
pub trait DynamicNetwork {
    /// Number of nodes `|V|` (constant across rounds).
    fn order(&self) -> usize;

    /// The communication graph `G_r` for round `round`.
    ///
    /// Calls are made with non-decreasing `round` values by the simulator,
    /// but implementations should be pure functions of `round` where
    /// possible so that experiments can replay rounds.
    fn graph(&mut self, round: u32) -> Graph;
}

impl<T: DynamicNetwork + ?Sized> DynamicNetwork for Box<T> {
    fn order(&self) -> usize {
        (**self).order()
    }
    fn graph(&mut self, round: u32) -> Graph {
        (**self).graph(round)
    }
}

/// A dynamic graph given by an explicit finite prefix; the last graph is
/// held forever afterwards ("the adversary goes static").
///
/// # Examples
///
/// ```
/// use anonet_graph::{DynamicNetwork, Graph, GraphSequence};
///
/// let seq = GraphSequence::new(vec![Graph::star(3)?, Graph::path(3)?])?;
/// let mut seq = seq;
/// assert_eq!(seq.graph(0).degree(0), 2);
/// assert_eq!(seq.graph(5).degree(0), 1); // holds the last graph
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphSequence {
    rounds: Vec<Graph>,
}

/// Error returned when a [`GraphSequence`] is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceError {
    detail: String,
}

impl core::fmt::Display for SequenceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid graph sequence: {}", self.detail)
    }
}

impl std::error::Error for SequenceError {}

impl GraphSequence {
    /// Creates a sequence from a non-empty list of graphs of equal order.
    ///
    /// # Errors
    ///
    /// Returns [`SequenceError`] if the list is empty or the orders differ.
    pub fn new(rounds: Vec<Graph>) -> Result<GraphSequence, SequenceError> {
        let Some(first) = rounds.first() else {
            return Err(SequenceError {
                detail: "sequence must contain at least one graph".into(),
            });
        };
        let order = first.order();
        if let Some((i, g)) = rounds.iter().enumerate().find(|(_, g)| g.order() != order) {
            return Err(SequenceError {
                detail: format!(
                    "graph at round {i} has order {} but round 0 has order {order}",
                    g.order()
                ),
            });
        }
        Ok(GraphSequence { rounds })
    }

    /// A static network: the same graph at every round.
    pub fn constant(g: Graph) -> GraphSequence {
        GraphSequence { rounds: vec![g] }
    }

    /// Length of the explicit prefix.
    pub fn prefix_len(&self) -> usize {
        self.rounds.len()
    }
}

impl DynamicNetwork for GraphSequence {
    fn order(&self) -> usize {
        self.rounds[0].order()
    }

    fn graph(&mut self, round: u32) -> Graph {
        let idx = (round as usize).min(self.rounds.len() - 1);
        self.rounds[idx].clone()
    }
}

/// Adapts a closure `fn(round) -> Graph` into a [`DynamicNetwork`].
pub struct FnNetwork<F> {
    order: usize,
    f: F,
}

impl<F: FnMut(u32) -> Graph> FnNetwork<F> {
    /// Wraps `f`, which must return graphs of the given `order`.
    pub fn new(order: usize, f: F) -> FnNetwork<F> {
        FnNetwork { order, f }
    }
}

impl<F: FnMut(u32) -> Graph> DynamicNetwork for FnNetwork<F> {
    fn order(&self) -> usize {
        self.order
    }

    fn graph(&mut self, round: u32) -> Graph {
        let g = (self.f)(round);
        debug_assert_eq!(g.order(), self.order, "FnNetwork closure changed order");
        g
    }
}

impl<F> core::fmt::Debug for FnNetwork<F> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "FnNetwork(order={})", self.order)
    }
}

/// Checks 1-interval connectivity on rounds `0..window`: every per-round
/// graph must be connected (§1, constraint on the worst-case adversary).
///
/// Returns the first disconnected round, if any.
pub fn check_interval_connectivity(net: &mut dyn DynamicNetwork, window: u32) -> Option<u32> {
    (0..window).find(|&r| !net.graph(r).is_connected())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphError;

    fn star3() -> Graph {
        Graph::star(3).unwrap()
    }

    #[test]
    fn sequence_holds_last() {
        let mut s = GraphSequence::new(vec![star3(), Graph::path(3).unwrap()]).unwrap();
        assert_eq!(s.prefix_len(), 2);
        assert_eq!(s.graph(0), star3());
        assert_eq!(s.graph(1), Graph::path(3).unwrap());
        assert_eq!(s.graph(100), Graph::path(3).unwrap());
    }

    #[test]
    fn sequence_validation() {
        assert!(GraphSequence::new(vec![]).is_err());
        let err = GraphSequence::new(vec![star3(), Graph::star(4).unwrap()]).unwrap_err();
        assert!(err.to_string().contains("order 4"));
    }

    #[test]
    fn constant_network() {
        let mut c = GraphSequence::constant(star3());
        assert_eq!(c.order(), 3);
        assert_eq!(c.graph(7), star3());
    }

    #[test]
    fn fn_network() {
        let mut f = FnNetwork::new(4, |r| {
            if r % 2 == 0 {
                Graph::star(4).unwrap()
            } else {
                Graph::path(4).unwrap()
            }
        });
        assert_eq!(f.order(), 4);
        assert_eq!(f.graph(0).degree(0), 3);
        assert_eq!(f.graph(1).degree(0), 1);
    }

    #[test]
    fn interval_connectivity() {
        let disconnected = Graph::from_edges(3, [(0, 1)])
            .map_err(|_: GraphError| ())
            .unwrap();
        let mut s = GraphSequence::new(vec![star3(), disconnected, star3()]).unwrap();
        assert_eq!(check_interval_connectivity(&mut s, 5), Some(1));
        let mut ok = GraphSequence::constant(star3());
        assert_eq!(check_interval_connectivity(&mut ok, 5), None);
    }

    #[test]
    fn boxed_dispatch() {
        let mut b: Box<dyn DynamicNetwork> = Box::new(GraphSequence::constant(star3()));
        assert_eq!(b.order(), 3);
        assert_eq!(b.graph(0), star3());
    }
}
