//! Graph-layer fault injection: deterministic perturbation of a
//! [`DynamicNetwork`]'s per-round topologies.
//!
//! The counting algorithms that run on explicit graph sequences (the
//! `G(PD)_2` view-counting rule, the degree-oracle algorithm, and the
//! netsim baselines) assume every round's graph is connected and every
//! edge delivers. [`NetworkFaultPlan`] breaks those assumptions on
//! purpose — crashing nodes, isolating the leader, and dropping edges at
//! chosen rounds — and [`FaultyNetwork`] applies the plan as a filtering
//! adapter around any inner network.
//!
//! Only faults with a graph-level meaning live here (a crashed node has
//! no edges; a dropped edge delivers in neither direction). Message-level
//! faults — duplicated deliveries, leader state loss — cannot be
//! expressed as an edge filter and are applied by the multigraph-layer
//! fault plan instead (`anonet-multigraph`'s `faults` module, which
//! projects onto a [`NetworkFaultPlan`] for the graph-level subset).
//!
//! Everything is a pure function of the plan and the round, so faulted
//! networks replay deterministically: the experiment grids stay
//! byte-identical for every `--threads` count.
//!
//! # Examples
//!
//! ```
//! use anonet_graph::faults::{FaultyNetwork, NetworkFaultPlan};
//! use anonet_graph::{DynamicNetwork, Graph, GraphSequence};
//!
//! let seq = GraphSequence::new(vec![Graph::star(4)?])?;
//! let plan = NetworkFaultPlan::new().crash(1, 1); // node 3 dies at round 1
//! let mut net = FaultyNetwork::new(seq, plan);
//! assert_eq!(net.graph(0).degree(0), 3); // round 0 intact
//! assert_eq!(net.graph(1).degree(0), 2); // node 3's edge gone
//! assert_eq!(net.graph(1).degree(3), 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::dynamic::DynamicNetwork;
use crate::graph::Graph;

/// A deterministic schedule of graph-level faults.
///
/// Three fault shapes are supported:
///
/// * **crash** — from the given round on, the `count` highest-indexed
///   live non-leader nodes stop forever: all their edges are removed.
///   Crashes accumulate across entries and never heal. A crash can take
///   effect no earlier than round 1: every node completes round 0 (a
///   node that never communicated is indistinguishable from a smaller
///   network, not a fault), so a round-0 entry acts at round 1.
/// * **disconnect** — for exactly the given round, every edge incident to
///   the leader (node 0) is removed, violating 1-interval connectivity.
/// * **edge drops** — for exactly the given round, every edge whose index
///   in [`Graph::edges`] order is congruent to `offset` modulo `stride`
///   is removed (a deterministic stand-in for per-round message loss).
///
/// The empty plan is a strict no-op: [`NetworkFaultPlan::apply`] returns
/// the input graph unchanged.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetworkFaultPlan {
    /// `(round, count)`: at `round`, `count` more highest-indexed
    /// non-leader nodes crash permanently.
    crashes: Vec<(u32, u32)>,
    /// Rounds whose graphs lose every leader-incident edge.
    disconnects: Vec<u32>,
    /// `(round, stride, offset)`: at `round`, drop edges with index
    /// `i % stride == offset % stride` (stride 0 is treated as 1).
    edge_drops: Vec<(u32, u32, u32)>,
}

impl NetworkFaultPlan {
    /// An empty plan (guaranteed no-op).
    pub fn new() -> NetworkFaultPlan {
        NetworkFaultPlan::default()
    }

    /// Crashes `count` additional highest-indexed non-leader nodes from
    /// `round` on.
    #[must_use]
    pub fn crash(mut self, round: u32, count: u32) -> NetworkFaultPlan {
        self.crashes.push((round, count));
        self
    }

    /// Removes every leader-incident edge of round `round`.
    #[must_use]
    pub fn disconnect(mut self, round: u32) -> NetworkFaultPlan {
        self.disconnects.push(round);
        self
    }

    /// Drops every `stride`-th edge (at `offset`) of round `round`.
    #[must_use]
    pub fn drop_edges(mut self, round: u32, stride: u32, offset: u32) -> NetworkFaultPlan {
        self.edge_drops.push((round, stride, offset));
        self
    }

    /// True when the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.disconnects.is_empty() && self.edge_drops.is_empty()
    }

    /// Total number of nodes crashed at or before `round` (entries act
    /// no earlier than round 1).
    pub fn crashed_at(&self, round: u32) -> u64 {
        self.crashes
            .iter()
            .filter(|(r, _)| (*r).max(1) <= round)
            .map(|(_, c)| u64::from(*c))
            .sum()
    }

    /// Applies the plan to round `round`'s graph, returning the faulted
    /// graph. The inner graph is never mutated.
    pub fn apply(&self, g: &Graph, round: u32) -> Graph {
        if self.is_empty() {
            return g.clone();
        }
        let order = g.order();
        // Crashed set: the `crashed` highest-indexed nodes, never node 0.
        let crashed = usize::try_from(self.crashed_at(round)).unwrap_or(usize::MAX);
        let first_dead = order.saturating_sub(crashed).max(1);
        let disconnect = self.disconnects.contains(&round);
        let kept = g.edges().enumerate().filter_map(|(i, (u, v))| {
            if u >= first_dead || v >= first_dead {
                return None;
            }
            if disconnect && (u == 0 || v == 0) {
                return None;
            }
            for &(r, stride, offset) in &self.edge_drops {
                if r == round {
                    let stride = stride.max(1) as usize;
                    if i % stride == (offset as usize) % stride {
                        return None;
                    }
                }
            }
            Some((u, v))
        });
        Graph::from_edges(order, kept).expect("a subset of a valid graph's edges is valid")
    }
}

/// A [`DynamicNetwork`] adapter that applies a [`NetworkFaultPlan`] to
/// every round of an inner network.
#[derive(Debug, Clone)]
pub struct FaultyNetwork<N> {
    inner: N,
    plan: NetworkFaultPlan,
}

impl<N: DynamicNetwork> FaultyNetwork<N> {
    /// Wraps `inner`, faulting it according to `plan`.
    pub fn new(inner: N, plan: NetworkFaultPlan) -> FaultyNetwork<N> {
        FaultyNetwork { inner, plan }
    }

    /// The fault plan in effect.
    pub fn plan(&self) -> &NetworkFaultPlan {
        &self.plan
    }

    /// Unwraps the inner network.
    pub fn into_inner(self) -> N {
        self.inner
    }
}

impl<N: DynamicNetwork> DynamicNetwork for FaultyNetwork<N> {
    fn order(&self) -> usize {
        self.inner.order()
    }

    fn graph(&mut self, round: u32) -> Graph {
        let g = self.inner.graph(round);
        self.plan.apply(&g, round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::GraphSequence;

    fn star4() -> GraphSequence {
        GraphSequence::new(vec![Graph::star(4).unwrap()]).unwrap()
    }

    #[test]
    fn empty_plan_is_a_noop() {
        let g = Graph::complete(5);
        let plan = NetworkFaultPlan::new();
        assert!(plan.is_empty());
        for r in 0..4 {
            assert_eq!(plan.apply(&g, r), g);
        }
    }

    #[test]
    fn crash_removes_highest_indexed_nodes_permanently() {
        let plan = NetworkFaultPlan::new().crash(2, 2);
        let mut net = FaultyNetwork::new(star4(), plan);
        assert_eq!(net.graph(1).degree(0), 3);
        let g2 = net.graph(2);
        assert_eq!(g2.degree(0), 1, "nodes 2 and 3 crashed");
        assert_eq!(g2.degree(2), 0);
        assert_eq!(g2.degree(3), 0);
        assert_eq!(net.graph(7).degree(0), 1, "crashes never heal");
    }

    #[test]
    fn crash_never_kills_the_leader() {
        let plan = NetworkFaultPlan::new().crash(1, 99);
        let g = plan.apply(&Graph::complete(4), 1);
        // Everyone but the leader is dead: no edges remain.
        assert_eq!(g.edges().count(), 0);
        assert_eq!(g.order(), 4);
    }

    #[test]
    fn round_zero_crashes_act_at_round_one() {
        let plan = NetworkFaultPlan::new().crash(0, 1);
        let g = Graph::complete(4);
        assert_eq!(plan.apply(&g, 0), g, "every node completes round 0");
        assert_eq!(plan.apply(&g, 1).degree(3), 0);
    }

    #[test]
    fn disconnect_isolates_the_leader_for_one_round() {
        let plan = NetworkFaultPlan::new().disconnect(1);
        let g = Graph::complete(4);
        assert_eq!(plan.apply(&g, 0), g);
        let faulted = plan.apply(&g, 1);
        assert_eq!(faulted.degree(0), 0);
        assert!(!faulted.is_connected());
        assert!(faulted.degree(1) > 0, "non-leader edges survive");
        assert_eq!(plan.apply(&g, 2), g);
    }

    #[test]
    fn drop_edges_filters_by_stride() {
        let g = Graph::star(5).unwrap(); // 4 edges
        let plan = NetworkFaultPlan::new().drop_edges(0, 2, 0);
        let faulted = plan.apply(&g, 0);
        assert_eq!(faulted.edges().count(), 2);
        // Other rounds untouched.
        assert_eq!(plan.apply(&g, 1), g);
    }

    #[test]
    fn plans_compose() {
        let plan = NetworkFaultPlan::new().crash(1, 1).disconnect(1);
        let g = Graph::complete(4); // 6 edges
        let faulted = plan.apply(&g, 1);
        // Node 3 dead, leader isolated: only edge (1,2) remains.
        let edges: Vec<_> = faulted.edges().collect();
        assert_eq!(edges, vec![(1, 2)]);
    }
}
