//! `T`-interval connectivity (Kuhn, Lynch & Oshman \[9\]).
//!
//! The paper's adversary is constrained to 1-interval connectivity: every
//! round's graph is connected. The stronger `T`-interval condition demands
//! a *stable connected spanning subgraph* across every window of `T`
//! consecutive rounds. This module provides the checker, the stable
//! (intersection) subgraph, and a random adversary that guarantees
//! `T`-interval connectivity by construction — substrate for exploring how
//! adversary stability interacts with the counting bound (all `G(PD)_2`
//! worst-case instances here are 1-interval connected, and the star inside
//! them — leader plus relays — is in fact stable forever).

use crate::dynamic::DynamicNetwork;
use crate::generators::random_connected;
use crate::graph::Graph;
use rand::Rng;

/// The intersection of the graphs at rounds `start..start + window`: the
/// edges present in *every* round of the window.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn stable_subgraph(net: &mut dyn DynamicNetwork, start: u32, window: u32) -> Graph {
    assert!(window > 0, "window must be positive");
    let mut result = net.graph(start);
    for r in start + 1..start + window {
        result = result
            .intersection(&net.graph(r))
            .expect("dynamic networks have constant order");
    }
    result
}

/// Whether `net` is `T`-interval connected over rounds `0..horizon`:
/// every window of `t` consecutive rounds has a connected intersection.
///
/// Returns the first violating window start, or `None` if the property
/// holds on the examined prefix.
///
/// # Panics
///
/// Panics if `t == 0`.
pub fn check_t_interval_connectivity(
    net: &mut dyn DynamicNetwork,
    t: u32,
    horizon: u32,
) -> Option<u32> {
    assert!(t > 0, "t must be positive");
    (0..horizon.saturating_sub(t - 1)).find(|&start| !stable_subgraph(net, start, t).is_connected())
}

/// A random adversary that is `T`-interval connected by construction.
///
/// It draws one random spanning tree per *period* of `T` rounds and, for
/// the first `T - 1` rounds of each period, also keeps the previous
/// period's tree alive. Any window of `T` consecutive rounds then contains
/// at most `T - 1` rounds past a period boundary, so the boundary-crossing
/// period's *previous* tree (still present there) spans the whole window —
/// the standard overlap construction for `T`-interval connectivity.
/// Each round additionally gets fresh random extra edges.
///
/// The topology is a pure function of the round (derived from the seed),
/// so replaying rounds is safe.
#[derive(Debug, Clone)]
pub struct TIntervalAdversary {
    order: usize,
    t: u32,
    extra_edges: usize,
    seed: u64,
}

impl TIntervalAdversary {
    /// Creates the adversary.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0` or `t == 0`.
    pub fn new(order: usize, t: u32, extra_edges: usize, seed: u64) -> TIntervalAdversary {
        assert!(order > 0, "order must be positive");
        assert!(t > 0, "t must be positive");
        TIntervalAdversary {
            order,
            t,
            extra_edges,
            seed,
        }
    }

    /// The stability parameter `T`.
    pub fn t(&self) -> u32 {
        self.t
    }

    fn period_tree(&self, period: u32) -> Graph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            self.seed ^ (period as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        random_connected(self.order, 0, &mut rng)
    }
}

use rand::SeedableRng;

impl DynamicNetwork for TIntervalAdversary {
    fn order(&self) -> usize {
        self.order
    }

    fn graph(&mut self, round: u32) -> Graph {
        let period = round / self.t;
        let mut g = self.period_tree(period);
        // Overlap: the previous tree persists through the first T-1 rounds
        // of the new period.
        if period > 0 && round % self.t < self.t - 1 {
            g = g
                .union(&self.period_tree(period - 1))
                .expect("trees share one order");
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            self.seed ^ 0xDEAD_BEEF ^ (round as u64).wrapping_mul(0xA24B_AED4_963E_E407),
        );
        let mut added = 0usize;
        let mut guard = 0usize;
        while added < self.extra_edges && guard < 64 * (self.extra_edges + 1) {
            guard += 1;
            let u = rng.gen_range(0..self.order);
            let v = rng.gen_range(0..self.order);
            if u != v && !g.has_edge(u, v) {
                g.add_edge(u, v).expect("random edge valid");
                added += 1;
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::GraphSequence;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stable_subgraph_intersects() {
        let g0 = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let g1 = Graph::from_edges(4, [(0, 1), (1, 2), (0, 3)]).unwrap();
        let g2 = Graph::from_edges(4, [(0, 1), (2, 3), (0, 3), (1, 2)]).unwrap();
        let mut net = GraphSequence::new(vec![g0, g1, g2]).unwrap();
        let stable = stable_subgraph(&mut net, 0, 3);
        let mut edges: Vec<_> = stable.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2)]);
        // Window of 1 is just the round graph.
        assert_eq!(stable_subgraph(&mut net, 1, 1), net.graph(1));
    }

    #[test]
    fn one_interval_is_per_round_connectivity() {
        let connected = Graph::star(4).unwrap();
        let mut net = GraphSequence::constant(connected);
        assert_eq!(check_t_interval_connectivity(&mut net, 1, 10), None);
    }

    #[test]
    fn detects_unstable_windows() {
        // Each round is connected, but consecutive rounds share no edges:
        // 1-interval holds, 2-interval fails at window 0.
        let g0 = Graph::star(4).unwrap();
        let g1 = Graph::from_edges(4, [(1, 2), (2, 3), (3, 0)]).unwrap();
        let mut net = GraphSequence::new(vec![g0, g1]).unwrap();
        assert_eq!(check_t_interval_connectivity(&mut net, 1, 2), None);
        assert_eq!(check_t_interval_connectivity(&mut net, 2, 4), Some(0));
    }

    #[test]
    fn t_interval_adversary_satisfies_its_contract() {
        for t in [1u32, 2, 3, 5] {
            for seed in 0..4u64 {
                let mut adv = TIntervalAdversary::new(12, t, 4, seed);
                assert_eq!(adv.t(), t);
                assert_eq!(
                    check_t_interval_connectivity(&mut adv, t, 6 * t),
                    None,
                    "T = {t}, seed = {seed}"
                );
            }
        }
    }

    #[test]
    fn adversary_rewires_across_periods() {
        let mut adv = TIntervalAdversary::new(20, 3, 0, 8);
        // Last round of period 0 carries only tree 0; last round of period
        // 1 carries only tree 1 — they differ.
        let g_p0 = adv.graph(2);
        let g_p1 = adv.graph(5);
        assert_ne!(g_p0, g_p1, "tree redrawn across periods");
        // Replaying a round is deterministic.
        assert_eq!(adv.graph(2), g_p0);
    }

    #[test]
    fn pd2_star_core_is_stable_forever() {
        // In every G(PD)_2 network the leader-relay star never changes:
        // it is T-interval connected for all T restricted to V_0 ∪ V_1.
        use crate::pd::{Pd2Layout, RandomPd2};
        let layout = Pd2Layout {
            relays: 3,
            leaves: 8,
        };
        let mut net = RandomPd2::new(layout, StdRng::seed_from_u64(1));
        let stable = stable_subgraph(&mut net, 0, 12);
        for j in 0..3 {
            assert!(stable.has_edge(0, layout.relay(j)));
        }
    }
}
