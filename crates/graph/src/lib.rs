//! Static and dynamic graphs for anonymous dynamic networks.
//!
//! This crate implements the topological substrate of the reproduction of
//! *"Investigating the Cost of Anonymity on Dynamic Networks"* (Di Luna &
//! Baldoni, PODC 2015):
//!
//! * [`Graph`] — a per-round simple undirected topology `G_r` (§3);
//! * [`DynamicNetwork`] — the dynamic graph `G = {G_0, G_1, …}`
//!   (Definition 1), implemented by explicit [`GraphSequence`]s, closures,
//!   random generators and the persistent-distance families;
//! * [`metrics`] — flooding, the dynamic diameter `D` and persistent
//!   distances (Definitions 3–4);
//! * [`pd`] — the `G(PD)_2` family at the heart of the lower bound,
//!   including the paper's Figure 1 instance;
//! * [`generators`] — fair random adversaries;
//! * [`ChainExtended`] — the Corollary 1 chain construction.
//!
//! # Examples
//!
//! ```
//! use anonet_graph::{metrics, pd};
//!
//! // The paper's Figure 1 network has dynamic diameter 4.
//! let mut net = pd::figure1();
//! assert_eq!(metrics::dynamic_diameter(&mut net, 4, 16), Some(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corollary;
pub mod dot;
mod dynamic;
pub mod faults;
pub mod generators;
#[allow(clippy::module_inception)]
mod graph;
pub mod interval;
pub mod metrics;
pub mod pd;

pub use corollary::ChainExtended;
pub use dynamic::{
    check_interval_connectivity, DynamicNetwork, FnNetwork, GraphSequence, SequenceError,
};
pub use graph::{Graph, GraphError, NodeId};
