//! Random graph and random dynamic-network generators.
//!
//! These provide the "fair adversary" side of the paper's dichotomy (§1): a
//! fair adversary rewires the network without trying to defeat the
//! algorithm (peer-to-peer style churn), in contrast to the worst-case
//! adversary of §4. All generators are deterministic given the seed of the
//! supplied RNG.

use crate::dynamic::DynamicNetwork;
use crate::graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;

/// A uniformly random connected graph: a random spanning tree (random
/// Prüfer-free attachment) plus `extra_edges` additional distinct random
/// edges (clamped to the complete graph).
///
/// # Panics
///
/// Panics if `order == 0`.
pub fn random_connected(order: usize, extra_edges: usize, rng: &mut impl Rng) -> Graph {
    assert!(order > 0, "random_connected requires at least one node");
    let mut g = Graph::empty(order);
    // Random attachment order yields a uniform-ish random tree; each new
    // node connects to a uniformly chosen existing node.
    let mut perm: Vec<usize> = (0..order).collect();
    perm.shuffle(rng);
    for i in 1..order {
        let parent = perm[rng.gen_range(0..i)];
        g.add_edge(perm[i], parent).expect("tree edges valid");
    }
    let max_edges = order * (order.saturating_sub(1)) / 2;
    let target = (order - 1 + extra_edges).min(max_edges);
    let mut guard = 0usize;
    while g.size() < target && guard < 64 * target + 64 {
        guard += 1;
        let u = rng.gen_range(0..order);
        let v = rng.gen_range(0..order);
        if u != v {
            g.add_edge(u, v).expect("random edge valid");
        }
    }
    g
}

/// A dynamic network that draws a fresh random connected graph every round —
/// an oblivious fair adversary satisfying 1-interval connectivity.
#[derive(Debug)]
pub struct RandomDynamic<R> {
    order: usize,
    extra_edges: usize,
    rng: R,
}

impl<R: Rng> RandomDynamic<R> {
    /// Creates the generator; every round's graph is connected with
    /// `order - 1 + extra_edges` edges (clamped to complete).
    ///
    /// # Panics
    ///
    /// Panics if `order == 0`.
    pub fn new(order: usize, extra_edges: usize, rng: R) -> RandomDynamic<R> {
        assert!(order > 0, "RandomDynamic requires at least one node");
        RandomDynamic {
            order,
            extra_edges,
            rng,
        }
    }
}

impl<R: Rng> DynamicNetwork for RandomDynamic<R> {
    fn order(&self) -> usize {
        self.order
    }

    fn graph(&mut self, _round: u32) -> Graph {
        random_connected(self.order, self.extra_edges, &mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::check_interval_connectivity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_connected_is_connected() {
        let mut rng = StdRng::seed_from_u64(1);
        for order in [1, 2, 3, 10, 40] {
            for extra in [0, 3, 100] {
                let g = random_connected(order, extra, &mut rng);
                assert!(g.is_connected(), "order={order} extra={extra}");
                assert!(g.size() >= order.saturating_sub(1));
                assert!(g.size() <= order * order.saturating_sub(1) / 2);
            }
        }
    }

    #[test]
    fn extra_edges_clamped_to_complete() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = random_connected(4, 1000, &mut rng);
        assert_eq!(g.size(), 6);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = random_connected(12, 5, &mut StdRng::seed_from_u64(7));
        let b = random_connected(12, 5, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn random_dynamic_interval_connected() {
        let mut net = RandomDynamic::new(15, 4, StdRng::seed_from_u64(3));
        assert_eq!(net.order(), 15);
        assert_eq!(check_interval_connectivity(&mut net, 25), None);
    }
}
