//! Static undirected graphs.
//!
//! [`Graph`] is the per-round communication topology `G_r = (V, E(r))` of
//! the paper's model (§3): a simple undirected graph over a fixed node set
//! `0..n`, where node `0` is conventionally the distinguished leader `v_l`.

use core::fmt;

/// Index of a node in a [`Graph`]. Node `0` is the leader by convention.
pub type NodeId = usize;

/// Errors produced when building or validating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge referenced a node outside `0..order`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The number of nodes in the graph.
        order: usize,
    },
    /// A self-loop was requested; the model uses simple graphs.
    SelfLoop {
        /// The node with the attempted loop.
        node: NodeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, order } => {
                write!(f, "node {node} out of range for graph of order {order}")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node} not allowed"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A simple undirected graph over nodes `0..order`.
///
/// # Examples
///
/// ```
/// use anonet_graph::Graph;
///
/// // A star with the leader (node 0) at the center: the G(PD)_1 topology.
/// let g = Graph::star(4)?;
/// assert_eq!(g.order(), 4);
/// assert_eq!(g.degree(0), 3);
/// assert!(g.is_connected());
/// # Ok::<(), anonet_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    edges: usize,
}

impl Graph {
    /// Creates an edgeless graph with `order` nodes.
    pub fn empty(order: usize) -> Graph {
        Graph {
            adj: vec![Vec::new(); order],
            edges: 0,
        }
    }

    /// Builds a graph from an explicit edge list.
    ///
    /// Duplicate edges are idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`]
    /// for invalid edges.
    pub fn from_edges(
        order: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Result<Graph, GraphError> {
        let mut g = Graph::empty(order);
        for (u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// A star with node `0` at the center — exactly the `G(PD)_1` topology
    /// in which the leader counts in one round.
    ///
    /// # Errors
    ///
    /// Never fails for `order >= 1`; propagates [`GraphError`] otherwise.
    pub fn star(order: usize) -> Result<Graph, GraphError> {
        Graph::from_edges(order, (1..order).map(|v| (0, v)))
    }

    /// A simple path `0 - 1 - … - (order-1)`.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] (unreachable for valid orders).
    pub fn path(order: usize) -> Result<Graph, GraphError> {
        Graph::from_edges(order, (1..order).map(|v| (v - 1, v)))
    }

    /// A cycle over all nodes (requires `order >= 3`).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `order < 3` makes the closing
    /// edge degenerate.
    pub fn cycle(order: usize) -> Result<Graph, GraphError> {
        let mut g = Graph::path(order)?;
        if order >= 2 {
            g.add_edge(order - 1, 0)?;
        }
        Ok(g)
    }

    /// The complete graph on `order` nodes.
    pub fn complete(order: usize) -> Graph {
        let mut g = Graph::empty(order);
        for u in 0..order {
            for v in (u + 1)..order {
                g.add_edge(u, v).expect("complete graph edges are valid");
            }
        }
        g
    }

    /// Inserts the undirected edge `{u, v}`; idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is out of range
    /// and [`GraphError::SelfLoop`] if `u == v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        let order = self.order();
        for node in [u, v] {
            if node >= order {
                return Err(GraphError::NodeOutOfRange { node, order });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if self.has_edge(u, v) {
            return Ok(());
        }
        self.adj[u].push(v);
        self.adj[v].push(u);
        self.adj[u].sort_unstable();
        self.adj[v].sort_unstable();
        self.edges += 1;
        Ok(())
    }

    /// Whether the edge `{u, v}` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u < self.order() && self.adj[u].binary_search(&v).is_ok()
    }

    /// Number of nodes `|V|`.
    pub fn order(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges `|E|`.
    pub fn size(&self) -> usize {
        self.edges
    }

    /// The sorted neighbourhood `N(v, r)` of a node.
    ///
    /// # Panics
    ///
    /// Panics if `v >= order()`.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v]
    }

    /// Degree `|N(v, r)|` of a node.
    ///
    /// # Panics
    ///
    /// Panics if `v >= order()`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v].len()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterates over all edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, ns)| ns.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }

    /// The edge-intersection of two graphs over the same node set — the
    /// stable subgraph of two rounds.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if the orders differ.
    pub fn intersection(&self, other: &Graph) -> Result<Graph, GraphError> {
        if self.order() != other.order() {
            return Err(GraphError::NodeOutOfRange {
                node: other.order(),
                order: self.order(),
            });
        }
        let mut g = Graph::empty(self.order());
        for (u, v) in self.edges() {
            if other.has_edge(u, v) {
                g.add_edge(u, v)?;
            }
        }
        Ok(g)
    }

    /// The edge-union of two graphs over the same node set.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if the orders differ.
    pub fn union(&self, other: &Graph) -> Result<Graph, GraphError> {
        if self.order() != other.order() {
            return Err(GraphError::NodeOutOfRange {
                node: other.order(),
                order: self.order(),
            });
        }
        let mut g = self.clone();
        for (u, v) in other.edges() {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// BFS distances from `src`; `None` for unreachable nodes.
    ///
    /// # Panics
    ///
    /// Panics if `src >= order()`.
    pub fn distances_from(&self, src: NodeId) -> Vec<Option<u32>> {
        assert!(src < self.order(), "source out of range");
        let mut dist = vec![None; self.order()];
        dist[src] = Some(0);
        let mut frontier = vec![src];
        let mut d = 0u32;
        while !frontier.is_empty() {
            d += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in self.neighbors(u) {
                    if dist[v].is_none() {
                        dist[v] = Some(d);
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        dist
    }

    /// Whether the graph is connected (vacuously true for order ≤ 1).
    ///
    /// The paper's worst-case adversary is constrained to keep every round's
    /// graph connected (1-interval connectivity).
    pub fn is_connected(&self) -> bool {
        if self.order() <= 1 {
            return true;
        }
        self.distances_from(0).iter().all(Option::is_some)
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(order={}, edges=[", self.order())?;
        for (i, (u, v)) in self.edges().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{u}-{v}")?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_is_pd1_shape() {
        let g = Graph::star(5).unwrap();
        assert_eq!(g.size(), 4);
        assert_eq!(g.degree(0), 4);
        for v in 1..5 {
            assert_eq!(g.degree(v), 1);
            assert!(g.has_edge(0, v));
        }
        assert!(g.is_connected());
    }

    #[test]
    fn add_edge_idempotent_and_symmetric() {
        let mut g = Graph::empty(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 0).unwrap();
        assert_eq!(g.size(), 1);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
    }

    #[test]
    fn invalid_edges() {
        let mut g = Graph::empty(2);
        assert_eq!(
            g.add_edge(0, 2),
            Err(GraphError::NodeOutOfRange { node: 2, order: 2 })
        );
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn path_distances() {
        let g = Graph::path(5).unwrap();
        let d = g.distances_from(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn disconnected_detected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
        assert_eq!(g.distances_from(0)[2], None);
    }

    #[test]
    fn cycle_and_complete() {
        let c = Graph::cycle(6).unwrap();
        assert_eq!(c.size(), 6);
        assert_eq!(c.distances_from(0)[3], Some(3));

        let k = Graph::complete(5);
        assert_eq!(k.size(), 10);
        assert_eq!(k.max_degree(), 4);
        assert!(k.distances_from(2).iter().all(|d| d.unwrap() <= 1));
    }

    #[test]
    fn edges_iterator_normalized() {
        let g = Graph::from_edges(4, [(3, 1), (0, 2)]).unwrap();
        let mut e: Vec<_> = g.edges().collect();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn empty_and_singleton_connected() {
        assert!(Graph::empty(0).is_connected());
        assert!(Graph::empty(1).is_connected());
        assert!(!Graph::empty(2).is_connected());
    }

    #[test]
    fn intersection_and_union() {
        let a = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let b = Graph::from_edges(4, [(0, 1), (2, 3), (0, 3)]).unwrap();
        let i = a.intersection(&b).unwrap();
        let mut e: Vec<_> = i.edges().collect();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1), (2, 3)]);
        let u = a.union(&b).unwrap();
        assert_eq!(u.size(), 4);
        assert!(u.has_edge(0, 3) && u.has_edge(1, 2));
        // Mismatched orders rejected.
        assert!(a.intersection(&Graph::empty(3)).is_err());
        assert!(a.union(&Graph::empty(5)).is_err());
        // Algebra: intersection is idempotent, union with self too.
        assert_eq!(a.intersection(&a).unwrap(), a);
        assert_eq!(a.union(&a).unwrap(), a);
    }

    #[test]
    fn error_display() {
        let e = GraphError::NodeOutOfRange { node: 7, order: 3 };
        assert_eq!(e.to_string(), "node 7 out of range for graph of order 3");
    }
}
