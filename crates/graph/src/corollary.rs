//! The Corollary 1 construction: grafting a static chain onto a dynamic
//! core to inflate the dynamic diameter.
//!
//! Corollary 1 of the paper lifts the `G(PD)_2` lower bound to any constant
//! dynamic diameter `D`: connect the leader to the dynamic core through a
//! static chain, so information needs `Θ(chain)` extra rounds in each
//! direction while the core still forces the `Ω(log |V|)` ambiguity.
//!
//! [`ChainExtended`] implements this as a generic graph transformer: the
//! inner network's leader (its node 0) is replaced by the far end of a
//! static chain whose near end is the new leader.

use crate::dynamic::DynamicNetwork;
use crate::graph::Graph;

/// A dynamic network obtained from `inner` by splicing a static chain of
/// `chain_len` extra nodes between a new leader and the inner network's
/// leader position.
///
/// Node layout of the result (order = `inner.order() + chain_len`):
///
/// * node `0` — the new leader;
/// * nodes `1..=chain_len` — the static chain (`0 – 1 – … – chain_len`);
/// * node `chain_len` is additionally connected, each round, to every node
///   the *inner* leader was adjacent to in that round's inner graph;
/// * inner node `i >= 1` becomes node `chain_len + i`.
///
/// With `chain_len = 0` the transformation is the identity.
///
/// # Examples
///
/// ```
/// use anonet_graph::{ChainExtended, DynamicNetwork, Graph, GraphSequence, metrics};
///
/// let core = GraphSequence::constant(Graph::star(4)?); // leader + 3 leaves
/// let mut net = ChainExtended::new(core, 3);
/// assert_eq!(net.order(), 7);
/// // Distances grow by the chain length.
/// let d = metrics::persistent_distances(&mut net, 4).unwrap();
/// assert_eq!(d, vec![0, 1, 2, 3, 4, 4, 4]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ChainExtended<N> {
    inner: N,
    chain_len: usize,
}

impl<N: DynamicNetwork> ChainExtended<N> {
    /// Wraps `inner`, adding `chain_len` chain nodes before its leader.
    ///
    /// # Panics
    ///
    /// Panics if `inner` has no nodes.
    pub fn new(inner: N, chain_len: usize) -> ChainExtended<N> {
        assert!(inner.order() > 0, "inner network must be non-empty");
        ChainExtended { inner, chain_len }
    }

    /// The wrapped inner network.
    pub fn inner(&self) -> &N {
        &self.inner
    }

    /// Number of spliced chain nodes.
    pub fn chain_len(&self) -> usize {
        self.chain_len
    }

    /// Maps an inner node id to its id in the extended network.
    pub fn map_inner(&self, inner_node: usize) -> usize {
        if inner_node == 0 {
            self.chain_len
        } else {
            self.chain_len + inner_node
        }
    }
}

impl<N: DynamicNetwork> DynamicNetwork for ChainExtended<N> {
    fn order(&self) -> usize {
        self.inner.order() + self.chain_len
    }

    fn graph(&mut self, round: u32) -> Graph {
        let inner_g = self.inner.graph(round);
        let mut g = Graph::empty(inner_g.order() + self.chain_len);
        // Static chain 0 - 1 - ... - chain_len.
        for i in 1..=self.chain_len {
            g.add_edge(i - 1, i).expect("chain edges valid");
        }
        // Inner edges, remapped; the inner leader's position is the chain end.
        let offset = self.chain_len;
        for (u, v) in inner_g.edges() {
            let mu = if u == 0 { offset } else { offset + u };
            let mv = if v == 0 { offset } else { offset + v };
            g.add_edge(mu, mv).expect("remapped edges valid");
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::GraphSequence;
    use crate::metrics;

    fn star_core(leaves: usize) -> GraphSequence {
        GraphSequence::constant(Graph::star(leaves + 1).unwrap())
    }

    #[test]
    fn zero_chain_is_identity() {
        let mut net = ChainExtended::new(star_core(3), 0);
        assert_eq!(net.order(), 4);
        assert_eq!(net.graph(0), Graph::star(4).unwrap());
        assert_eq!(net.map_inner(0), 0);
        assert_eq!(net.map_inner(2), 2);
    }

    #[test]
    fn chain_structure() {
        let mut net = ChainExtended::new(star_core(2), 2);
        let g = net.graph(0);
        assert_eq!(g.order(), 5);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2));
        // Chain end (node 2) took over the inner leader's star edges.
        assert!(g.has_edge(2, 3) && g.has_edge(2, 4));
        assert!(!g.has_edge(0, 3));
        assert!(g.is_connected());
    }

    #[test]
    fn diameter_grows_with_chain() {
        // For a star core the extremal flood is leaf -> hub -> chain -> new
        // leader: max(base, chain + 1) rounds.
        let base = metrics::dynamic_diameter(&mut star_core(4), 2, 32).unwrap();
        assert_eq!(base, 2);
        for chain in [1usize, 3, 6] {
            let mut net = ChainExtended::new(star_core(4), chain);
            let d = metrics::dynamic_diameter(&mut net, 2, 64).unwrap();
            assert_eq!(d, base.max(chain as u32 + 1));
        }
    }

    #[test]
    fn preserves_interval_connectivity() {
        let mut net = ChainExtended::new(star_core(3), 4);
        assert_eq!(
            crate::dynamic::check_interval_connectivity(&mut net, 8),
            None
        );
    }

    #[test]
    fn map_inner_consistency() {
        let net = ChainExtended::new(star_core(3), 5);
        assert_eq!(net.chain_len(), 5);
        assert_eq!(net.map_inner(0), 5);
        assert_eq!(net.map_inner(1), 6);
        assert_eq!(net.inner().order(), 4);
    }
}
