//! Graphviz DOT export.
//!
//! Renders per-round graphs (and short dynamic prefixes) as DOT for
//! papers, debugging and teaching. The layout distinguishes the leader
//! and, when persistent distances exist, colours the `G(PD)_h` layers.

use crate::dynamic::DynamicNetwork;
use crate::graph::Graph;
use crate::metrics;
use core::fmt::Write as _;

/// Renders a single graph as an undirected DOT graph.
///
/// Node 0 is drawn as the leader (doublecircle); if `layers` is given,
/// node fill colours encode the leader-distance layer.
pub fn graph_to_dot(g: &Graph, name: &str, layers: Option<&[u32]>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  layout=neato; overlap=false;");
    for v in 0..g.order() {
        let shape = if v == 0 { "doublecircle" } else { "circle" };
        let label = if v == 0 {
            "v_l".to_string()
        } else {
            format!("v{v}")
        };
        let color = match layers.and_then(|l| l.get(v)) {
            Some(0) => "gold",
            Some(1) => "lightblue",
            Some(2) => "lightgreen",
            Some(_) => "lightgray",
            None => "white",
        };
        let _ = writeln!(
            out,
            "  n{v} [label=\"{label}\", shape={shape}, style=filled, fillcolor={color}];"
        );
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  n{u} -- n{v};");
    }
    out.push_str("}\n");
    out
}

/// Renders the first `rounds` rounds of a dynamic network as a sequence
/// of DOT graphs (one per round, named `<name>_r<round>`), colouring
/// persistent-distance layers when they exist over the window.
pub fn dynamic_to_dot(net: &mut dyn DynamicNetwork, name: &str, rounds: u32) -> String {
    let layers = metrics::persistent_distances(net, rounds);
    let mut out = String::new();
    for r in 0..rounds {
        let g = net.graph(r);
        out.push_str(&graph_to_dot(
            &g,
            &format!("{name}_r{r}"),
            layers.as_deref(),
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pd;

    #[test]
    fn single_graph_dot() {
        let g = Graph::star(4).unwrap();
        let dot = graph_to_dot(&g, "star", None);
        assert!(dot.starts_with("graph star {"));
        assert!(dot.contains("n0 [label=\"v_l\", shape=doublecircle"));
        assert!(dot.contains("n0 -- n1;"));
        assert!(dot.contains("n0 -- n3;"));
        assert!(dot.trim_end().ends_with('}'));
        // 4 nodes + 3 edges + header/footer lines.
        assert_eq!(dot.matches(" -- ").count(), 3);
    }

    #[test]
    fn layers_colour_pd2() {
        let mut net = pd::figure1();
        let dot = dynamic_to_dot(&mut net, "fig1", 3);
        assert_eq!(dot.matches("graph fig1_r").count(), 3);
        assert!(dot.contains("fillcolor=gold"), "leader layer");
        assert!(dot.contains("fillcolor=lightblue"), "relay layer");
        assert!(dot.contains("fillcolor=lightgreen"), "leaf layer");
    }

    #[test]
    fn non_pd_networks_render_uncoloured() {
        let g0 = Graph::path(3).unwrap();
        let g1 = Graph::star(3).unwrap();
        let mut net = crate::dynamic::GraphSequence::new(vec![g0, g1]).unwrap();
        let dot = dynamic_to_dot(&mut net, "seq", 2);
        assert!(dot.contains("fillcolor=white"));
        assert!(!dot.contains("fillcolor=gold"));
    }
}
