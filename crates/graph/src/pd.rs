//! Persistent-distance networks `G(PD)_h`, in particular `G(PD)_2`.
//!
//! A `G(PD)_2` network (paper §3) has the leader at the centre, a layer
//! `V_1` of relay nodes at persistent distance 1 and a layer `V_2` of leaf
//! nodes at persistent distance 2. The adversary rewires which relays each
//! leaf touches every round; the leader's task is to count `V_2` through
//! that ambiguity. This module builds such networks from per-round
//! *relay masks* — for each leaf, the non-empty set of relays it touches —
//! which is exactly the data of an `M(DBL)_k` multigraph round.

use crate::dynamic::{DynamicNetwork, GraphSequence};
use crate::graph::{Graph, GraphError};
use rand::Rng;

/// Errors produced when building persistent-distance networks.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PdError {
    /// A leaf's relay mask was empty (it would disconnect the leaf).
    EmptyMask {
        /// Index of the offending leaf (0-based within the leaf layer).
        leaf: usize,
    },
    /// A relay mask referenced a relay `>= relay_count`.
    MaskOutOfRange {
        /// Index of the offending leaf.
        leaf: usize,
        /// The mask value.
        mask: u32,
        /// Number of relays.
        relays: usize,
    },
    /// The underlying graph construction failed.
    Graph(GraphError),
}

impl core::fmt::Display for PdError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PdError::EmptyMask { leaf } => {
                write!(f, "leaf {leaf} has an empty relay mask")
            }
            PdError::MaskOutOfRange { leaf, mask, relays } => write!(
                f,
                "leaf {leaf} mask {mask:#b} references relays beyond {relays}"
            ),
            PdError::Graph(e) => write!(f, "graph construction failed: {e}"),
        }
    }
}

impl std::error::Error for PdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PdError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for PdError {
    fn from(e: GraphError) -> Self {
        PdError::Graph(e)
    }
}

/// Node layout of a `G(PD)_2` network built by this module.
///
/// * node `0` — the leader `v_l` (`V_0`),
/// * nodes `1..=relays` — the relay layer `V_1`,
/// * nodes `relays+1..relays+leaves` — the leaf layer `V_2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pd2Layout {
    /// Number of relay nodes `|V_1|`.
    pub relays: usize,
    /// Number of leaf nodes `|V_2|`.
    pub leaves: usize,
}

impl Pd2Layout {
    /// Total number of nodes (`1 + relays + leaves`).
    pub fn order(&self) -> usize {
        1 + self.relays + self.leaves
    }

    /// Node id of relay `j` (0-based).
    pub fn relay(&self, j: usize) -> usize {
        assert!(j < self.relays, "relay index out of range");
        1 + j
    }

    /// Node id of leaf `i` (0-based).
    pub fn leaf(&self, i: usize) -> usize {
        assert!(i < self.leaves, "leaf index out of range");
        1 + self.relays + i
    }
}

/// Builds the round graph of a `G(PD)_2` network from per-leaf relay masks.
///
/// `masks[i]` is a bitmask over relays `0..layout.relays`: bit `j` set means
/// leaf `i` touches relay `j` this round. The leader is always connected to
/// every relay (keeping `V_1` at persistent distance 1).
///
/// # Errors
///
/// Returns [`PdError::EmptyMask`] or [`PdError::MaskOutOfRange`] on invalid
/// masks and propagates graph construction failures.
pub fn pd2_round_graph(layout: Pd2Layout, masks: &[u32]) -> Result<Graph, PdError> {
    assert_eq!(masks.len(), layout.leaves, "one mask per leaf required");
    let mut g = Graph::empty(layout.order());
    for j in 0..layout.relays {
        g.add_edge(0, layout.relay(j))?;
    }
    let full: u32 = if layout.relays >= 32 {
        u32::MAX
    } else {
        (1u32 << layout.relays) - 1
    };
    for (i, &mask) in masks.iter().enumerate() {
        if mask == 0 {
            return Err(PdError::EmptyMask { leaf: i });
        }
        if mask & !full != 0 {
            return Err(PdError::MaskOutOfRange {
                leaf: i,
                mask,
                relays: layout.relays,
            });
        }
        let mut m = mask;
        while m != 0 {
            let j = m.trailing_zeros() as usize;
            g.add_edge(layout.relay(j), layout.leaf(i))?;
            m &= m - 1;
        }
    }
    Ok(g)
}

/// A `G(PD)_2` network given by an explicit per-round mask schedule; the
/// last round's masks are held forever.
///
/// # Examples
///
/// ```
/// use anonet_graph::pd::{Pd2Layout, Pd2Schedule};
/// use anonet_graph::{metrics, DynamicNetwork};
///
/// let layout = Pd2Layout { relays: 2, leaves: 3 };
/// // Leaves hop between relays but stay at distance 2.
/// let mut net = Pd2Schedule::new(layout, vec![
///     vec![0b01, 0b10, 0b11],
///     vec![0b10, 0b01, 0b01],
/// ])?;
/// assert!(metrics::is_pd_h(&mut net, 2, 4));
/// # Ok::<(), anonet_graph::pd::PdError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Pd2Schedule {
    layout: Pd2Layout,
    rounds: Vec<Vec<u32>>,
}

impl Pd2Schedule {
    /// Creates a schedule, validating every round's masks eagerly.
    ///
    /// # Errors
    ///
    /// Returns the first mask error encountered; an empty schedule is
    /// rejected as an empty mask at leaf 0 of a synthetic round.
    pub fn new(layout: Pd2Layout, rounds: Vec<Vec<u32>>) -> Result<Pd2Schedule, PdError> {
        if rounds.is_empty() {
            return Err(PdError::EmptyMask { leaf: 0 });
        }
        for masks in &rounds {
            pd2_round_graph(layout, masks)?;
        }
        Ok(Pd2Schedule { layout, rounds })
    }

    /// The node layout of this network.
    pub fn layout(&self) -> Pd2Layout {
        self.layout
    }

    /// Number of explicitly scheduled rounds.
    pub fn prefix_len(&self) -> usize {
        self.rounds.len()
    }
}

impl DynamicNetwork for Pd2Schedule {
    fn order(&self) -> usize {
        self.layout.order()
    }

    fn graph(&mut self, round: u32) -> Graph {
        let idx = (round as usize).min(self.rounds.len() - 1);
        pd2_round_graph(self.layout, &self.rounds[idx]).expect("schedule validated at construction")
    }
}

/// A `G(PD)_2` network whose leaves pick a uniformly random non-empty relay
/// set every round — the "fair adversary" version of the family.
#[derive(Debug)]
pub struct RandomPd2<R> {
    layout: Pd2Layout,
    rng: R,
}

impl<R: Rng> RandomPd2<R> {
    /// Creates a random `G(PD)_2` source over the given layout.
    ///
    /// # Panics
    ///
    /// Panics if the layout has zero relays or more than 31 relays.
    pub fn new(layout: Pd2Layout, rng: R) -> RandomPd2<R> {
        assert!(
            (1..=31).contains(&layout.relays),
            "RandomPd2 supports 1..=31 relays"
        );
        RandomPd2 { layout, rng }
    }
}

impl<R: Rng> DynamicNetwork for RandomPd2<R> {
    fn order(&self) -> usize {
        self.layout.order()
    }

    fn graph(&mut self, _round: u32) -> Graph {
        let full = (1u32 << self.layout.relays) - 1;
        let masks: Vec<u32> = (0..self.layout.leaves)
            .map(|_| self.rng.gen_range(1..=full))
            .collect();
        pd2_round_graph(self.layout, &masks).expect("random masks are valid")
    }
}

/// Node layout of a general layered `G(PD)_h` network: `layers[i]` nodes
/// at persistent distance `i + 1` from the leader (node 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdLayout {
    layers: Vec<usize>,
}

impl PdLayout {
    /// Creates a layout from per-layer sizes (`layers[0]` = `|V_1|`, …).
    ///
    /// # Panics
    ///
    /// Panics if any layer is empty or there are no layers (a gap would
    /// break the persistent distances below it).
    pub fn new(layers: Vec<usize>) -> PdLayout {
        assert!(!layers.is_empty(), "at least one layer required");
        assert!(
            layers.iter().all(|&l| l > 0),
            "layers must be non-empty to carry the ones below"
        );
        PdLayout { layers }
    }

    /// The maximum persistent distance `h`.
    pub fn h(&self) -> usize {
        self.layers.len()
    }

    /// Per-layer sizes.
    pub fn layers(&self) -> &[usize] {
        &self.layers
    }

    /// Total number of nodes (leader included).
    pub fn order(&self) -> usize {
        1 + self.layers.iter().sum::<usize>()
    }

    /// Node id of the `i`-th node (0-based) in 1-based layer `layer`.
    ///
    /// # Panics
    ///
    /// Panics if the layer or index is out of range.
    pub fn node(&self, layer: usize, i: usize) -> usize {
        assert!((1..=self.h()).contains(&layer), "layer out of range");
        assert!(i < self.layers[layer - 1], "index out of range");
        1 + self.layers[..layer - 1].iter().sum::<usize>() + i
    }
}

/// A random `G(PD)_h` network for arbitrary depth `h`: every round, each
/// node of layer `i ≥ 2` picks a random non-empty subset of layer `i - 1`
/// to attach to (layer 1 is always fully attached to the leader), so every
/// node keeps persistent distance = its layer.
///
/// Intra-layer edges are never created (the paper's restricted variant),
/// and no node ever attaches above its parent layer, so distances are
/// exactly the layer indices every round.
#[derive(Debug)]
pub struct RandomPdH<R> {
    layout: PdLayout,
    rng: R,
}

impl<R: Rng> RandomPdH<R> {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if any layer has more than 20 nodes acting as parents (the
    /// subset sampling uses bitmasks).
    pub fn new(layout: PdLayout, rng: R) -> RandomPdH<R> {
        assert!(
            layout.layers().iter().all(|&l| l <= 20),
            "parent layers of at most 20 nodes supported"
        );
        RandomPdH { layout, rng }
    }

    /// The layout.
    pub fn layout(&self) -> &PdLayout {
        &self.layout
    }
}

impl<R: Rng> DynamicNetwork for RandomPdH<R> {
    fn order(&self) -> usize {
        self.layout.order()
    }

    fn graph(&mut self, _round: u32) -> Graph {
        let mut g = Graph::empty(self.layout.order());
        // Layer 1 is pinned to the leader.
        for i in 0..self.layout.layers()[0] {
            g.add_edge(0, self.layout.node(1, i))
                .expect("layout nodes valid");
        }
        for layer in 2..=self.layout.h() {
            let parents = self.layout.layers()[layer - 2];
            let full = (1u32 << parents) - 1;
            for i in 0..self.layout.layers()[layer - 1] {
                let mut mask = self.rng.gen_range(1..=full);
                while mask != 0 {
                    let p = mask.trailing_zeros() as usize;
                    g.add_edge(self.layout.node(layer - 1, p), self.layout.node(layer, i))
                        .expect("layout nodes valid");
                    mask &= mask - 1;
                }
            }
        }
        g
    }
}

/// The paper's Figure 1: a `G(PD)_2` network over three explicit rounds
/// whose dynamic diameter is `D = 4` — a flood started by leaf `v0` at
/// round 0 reaches leaf `v3` only at round 3.
///
/// Layout: node 0 = leader, nodes 1–2 = relays (`V_1`), nodes 3–5 = leaves
/// (`V_2`); node 3 plays the figure's `v0` and node 4 its `v3`.
pub fn figure1() -> GraphSequence {
    let layout = Pd2Layout {
        relays: 2,
        leaves: 3,
    };
    let rounds = vec![
        // r0: v0—relay1, v3—relay2, v4—relay1.
        vec![0b01, 0b10, 0b01],
        // r1: v4 hops to relay 2; v0 keeps relay 1 (which now knows the token).
        vec![0b01, 0b10, 0b10],
        // r2 (held forever): v4 back to relay 1.
        vec![0b01, 0b10, 0b01],
    ];
    let schedule = Pd2Schedule::new(layout, rounds).expect("figure 1 masks are valid");
    let graphs: Vec<Graph> = {
        let mut s = schedule;
        (0..3).map(|r| s.graph(r)).collect()
    };
    GraphSequence::new(graphs).expect("figure 1 rounds share one order")
}

/// Node ids of the named nodes in [`figure1`]: `(v_l, v0, v3)`.
pub fn figure1_nodes() -> (usize, usize, usize) {
    (0, 3, 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn layout_indices() {
        let l = Pd2Layout {
            relays: 2,
            leaves: 3,
        };
        assert_eq!(l.order(), 6);
        assert_eq!(l.relay(0), 1);
        assert_eq!(l.relay(1), 2);
        assert_eq!(l.leaf(0), 3);
        assert_eq!(l.leaf(2), 5);
    }

    #[test]
    fn round_graph_structure() {
        let l = Pd2Layout {
            relays: 2,
            leaves: 2,
        };
        let g = pd2_round_graph(l, &[0b01, 0b11]).unwrap();
        assert!(g.has_edge(0, 1) && g.has_edge(0, 2));
        assert!(g.has_edge(1, 3));
        assert!(!g.has_edge(2, 3));
        assert!(g.has_edge(1, 4) && g.has_edge(2, 4));
        assert!(g.is_connected());
    }

    #[test]
    fn invalid_masks_rejected() {
        let l = Pd2Layout {
            relays: 2,
            leaves: 1,
        };
        assert_eq!(
            pd2_round_graph(l, &[0]),
            Err(PdError::EmptyMask { leaf: 0 })
        );
        assert!(matches!(
            pd2_round_graph(l, &[0b100]),
            Err(PdError::MaskOutOfRange { .. })
        ));
    }

    #[test]
    fn schedule_is_pd2() {
        let l = Pd2Layout {
            relays: 3,
            leaves: 4,
        };
        let mut net = Pd2Schedule::new(
            l,
            vec![
                vec![0b001, 0b010, 0b100, 0b111],
                vec![0b010, 0b001, 0b011, 0b100],
            ],
        )
        .unwrap();
        assert_eq!(net.order(), 8);
        assert!(metrics::is_pd_h(&mut net, 2, 6));
        let d = metrics::persistent_distances(&mut net, 6).unwrap();
        assert_eq!(d, vec![0, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn schedule_validation_is_eager() {
        let l = Pd2Layout {
            relays: 2,
            leaves: 1,
        };
        assert!(Pd2Schedule::new(l, vec![vec![0b01], vec![0]]).is_err());
        assert!(Pd2Schedule::new(l, vec![]).is_err());
    }

    #[test]
    fn random_pd2_always_pd2() {
        let l = Pd2Layout {
            relays: 4,
            leaves: 10,
        };
        let mut net = RandomPd2::new(l, StdRng::seed_from_u64(42));
        assert!(metrics::is_pd_h(&mut net, 2, 20));
    }

    #[test]
    fn pd_layout_indices() {
        let l = PdLayout::new(vec![2, 3, 1]);
        assert_eq!(l.h(), 3);
        assert_eq!(l.order(), 7);
        assert_eq!(l.node(1, 0), 1);
        assert_eq!(l.node(1, 1), 2);
        assert_eq!(l.node(2, 0), 3);
        assert_eq!(l.node(2, 2), 5);
        assert_eq!(l.node(3, 0), 6);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn pd_layout_rejects_empty_layers() {
        PdLayout::new(vec![2, 0, 1]);
    }

    #[test]
    fn random_pd_h_has_persistent_layer_distances() {
        for (layers, seed) in [
            (vec![2usize, 4], 1u64),
            (vec![3, 5, 4], 2),
            (vec![1, 1, 1, 1], 3),
            (vec![2, 6, 3, 2, 4], 4),
        ] {
            let h = layers.len() as u32;
            let layout = PdLayout::new(layers.clone());
            let mut net = RandomPdH::new(layout.clone(), StdRng::seed_from_u64(seed));
            let d = metrics::persistent_distances(&mut net, 8)
                .unwrap_or_else(|| panic!("PD for layers {layers:?}"));
            assert!(metrics::is_pd_h(&mut net, h, 8));
            for layer in 1..=layout.h() {
                for i in 0..layout.layers()[layer - 1] {
                    assert_eq!(d[layout.node(layer, i)], layer as u32);
                }
            }
        }
    }

    #[test]
    fn random_pd_h_diameter_scales_with_depth() {
        // Seed chosen so the sampled shallow instance actually witnesses a
        // smaller dynamic diameter than the deep one (depth only bounds the
        // diameter from below, so not every seed separates the two).
        let shallow = {
            let mut net = RandomPdH::new(
                PdLayout::new(vec![2, 4]),
                StdRng::seed_from_u64(0),
            );
            metrics::dynamic_diameter(&mut net, 3, 64).unwrap()
        };
        let deep = {
            let mut net = RandomPdH::new(
                PdLayout::new(vec![2, 4, 4, 4]),
                StdRng::seed_from_u64(0),
            );
            metrics::dynamic_diameter(&mut net, 3, 64).unwrap()
        };
        assert!(deep > shallow, "{deep} > {shallow}");
    }

    #[test]
    fn figure1_reproduces_paper_flood() {
        let mut net = figure1();
        let (leader, v0, v3) = figure1_nodes();
        assert!(metrics::is_pd_h(&mut net, 2, 6));

        let f = metrics::flood(&mut net, v0, 0, 16);
        assert!(f.is_complete());
        assert_eq!(
            f.received_round(v3),
            Some(3),
            "the flood from v0 reaches v3 at round 3 (Figure 1)"
        );
        assert_eq!(f.duration(), Some(4), "witnesses D = 4");
        assert_eq!(f.received_round(leader), Some(1));

        // The dynamic diameter of the whole example is 4.
        assert_eq!(metrics::dynamic_diameter(&mut net, 4, 16), Some(4));
    }
}
