//! Metrics over dynamic graphs: flooding time and the dynamic diameter `D`.
//!
//! The paper (§3) defines the dynamic diameter through flooding: a network
//! has dynamic diameter `D` if a flood started by any node `v` at any round
//! `r` has been received by every node at most by round `r + D`. We measure
//! floods by *duration in rounds*: a flood started at round `r` whose last
//! delivery happens in round `r'` has duration `r' - r + 1` (the paper's
//! Figure 1 flood starts at round 0, reaches the last node at round 3 and
//! witnesses `D = 4`).

use crate::dynamic::DynamicNetwork;
use crate::graph::NodeId;

/// Result of simulating a flood on a dynamic graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flood {
    /// Round at which the flood started.
    pub start_round: u32,
    /// For each node, the round in which it first held the message
    /// (`start_round` for the source; delivery happens in the receive phase
    /// of the recorded round).
    pub received_at: Vec<Option<u32>>,
}

impl Flood {
    /// Whether every node received the message.
    pub fn is_complete(&self) -> bool {
        self.received_at.iter().all(Option::is_some)
    }

    /// Duration of the flood in rounds (`last delivery - start + 1`), or
    /// `None` if it never completed within the simulated horizon.
    pub fn duration(&self) -> Option<u32> {
        let mut last = self.start_round;
        for r in &self.received_at {
            last = last.max((*r)?);
        }
        Some(last - self.start_round + 1)
    }

    /// The round at which a specific node first received the message.
    pub fn received_round(&self, v: NodeId) -> Option<u32> {
        self.received_at.get(v).copied().flatten()
    }
}

/// Simulates a flood of a single token from `src` starting at round
/// `start_round`, for at most `max_rounds` rounds.
///
/// In each round, every informed node broadcasts; every neighbour of an
/// informed node becomes informed in that round's receive phase.
///
/// # Panics
///
/// Panics if `src` is out of range for the network's order.
pub fn flood(
    net: &mut dyn DynamicNetwork,
    src: NodeId,
    start_round: u32,
    max_rounds: u32,
) -> Flood {
    let n = net.order();
    assert!(src < n, "flood source {src} out of range for order {n}");
    let mut received_at: Vec<Option<u32>> = vec![None; n];
    received_at[src] = Some(start_round);
    let mut informed = vec![false; n];
    informed[src] = true;
    let mut informed_count = 1usize;

    for round in start_round..start_round.saturating_add(max_rounds) {
        if informed_count == n {
            break;
        }
        let g = net.graph(round);
        debug_assert_eq!(g.order(), n);
        let mut newly = Vec::new();
        for u in 0..n {
            if !informed[u] {
                continue;
            }
            for &v in g.neighbors(u) {
                if !informed[v] && !newly.contains(&v) {
                    newly.push(v);
                }
            }
        }
        for v in newly {
            informed[v] = true;
            informed_count += 1;
            received_at[v] = Some(round);
        }
    }

    Flood {
        start_round,
        received_at,
    }
}

/// Measures the dynamic diameter of `net` empirically over start rounds
/// `0..=max_start` (every source), bounding each flood by `max_rounds`.
///
/// Returns `None` if some flood failed to complete within `max_rounds` —
/// i.e. only a lower bound on `D` was observed. Otherwise returns the
/// maximum flood duration, which equals `D` when the supplied window
/// captures the adversary's worst behaviour (for periodic or eventually
/// static networks a window covering the period suffices).
pub fn dynamic_diameter(
    net: &mut dyn DynamicNetwork,
    max_start: u32,
    max_rounds: u32,
) -> Option<u32> {
    let n = net.order();
    let mut worst = 0u32;
    for start in 0..=max_start {
        for src in 0..n {
            let f = flood(net, src, start, max_rounds);
            worst = worst.max(f.duration()?);
        }
    }
    Some(worst)
}

/// The per-node persistent distances from the leader (Definition 3), if
/// they exist over the window `0..window`.
///
/// Returns `Some(dists)` with `dists[v] = D(v, v_l)` iff every node keeps
/// the same leader-distance in every examined round (and is connected to
/// the leader in all of them); returns `None` as soon as any node's
/// distance changes or becomes infinite.
pub fn persistent_distances(net: &mut dyn DynamicNetwork, window: u32) -> Option<Vec<u32>> {
    let n = net.order();
    let mut dists: Option<Vec<u32>> = None;
    for r in 0..window {
        let g = net.graph(r);
        let from_leader = g.distances_from(0);
        let mut now = Vec::with_capacity(n);
        for d in from_leader {
            now.push(d?);
        }
        match &dists {
            None => dists = Some(now),
            Some(prev) => {
                if *prev != now {
                    return None;
                }
            }
        }
    }
    dists
}

/// Whether `net` belongs to `G(PD)_h` on the examined window: every node
/// has a persistent leader-distance and the maximum distance is at most
/// `h` (Definition 4 and the `G(PD)_h` refinement).
pub fn is_pd_h(net: &mut dyn DynamicNetwork, h: u32, window: u32) -> bool {
    match persistent_distances(net, window) {
        Some(d) => d.iter().all(|&x| x <= h),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::GraphSequence;
    use crate::graph::Graph;

    #[test]
    fn flood_on_static_star_takes_two_rounds() {
        let mut net = GraphSequence::constant(Graph::star(5).unwrap());
        // From a leaf: leaf -> center in round 0, center -> leaves round 1.
        let f = flood(&mut net, 1, 0, 10);
        assert!(f.is_complete());
        assert_eq!(f.duration(), Some(2));
        assert_eq!(f.received_round(0), Some(0));
        assert_eq!(f.received_round(4), Some(1));
        // From the center: one round.
        let f = flood(&mut net, 0, 0, 10);
        assert_eq!(f.duration(), Some(1));
    }

    #[test]
    fn flood_on_path_is_linear() {
        let mut net = GraphSequence::constant(Graph::path(6).unwrap());
        let f = flood(&mut net, 0, 0, 10);
        assert_eq!(f.duration(), Some(5));
        assert_eq!(f.received_round(5), Some(4));
    }

    #[test]
    fn flood_respects_start_round() {
        let mut net = GraphSequence::constant(Graph::path(3).unwrap());
        let f = flood(&mut net, 0, 7, 10);
        assert_eq!(f.received_round(2), Some(8));
        assert_eq!(f.duration(), Some(2));
    }

    #[test]
    fn incomplete_flood_reported() {
        let disconnected = Graph::from_edges(3, [(0, 1)]).unwrap();
        let mut net = GraphSequence::constant(disconnected);
        let f = flood(&mut net, 0, 0, 5);
        assert!(!f.is_complete());
        assert_eq!(f.duration(), None);
        assert_eq!(f.received_round(2), None);
    }

    #[test]
    fn dynamic_diameter_of_star_is_two() {
        let mut net = GraphSequence::constant(Graph::star(6).unwrap());
        assert_eq!(dynamic_diameter(&mut net, 3, 20), Some(2));
    }

    #[test]
    fn dynamic_diameter_of_path() {
        let mut net = GraphSequence::constant(Graph::path(4).unwrap());
        assert_eq!(dynamic_diameter(&mut net, 2, 20), Some(3));
    }

    #[test]
    fn persistent_distances_on_static_pd2() {
        // leader 0; relays 1,2; leaves 3,4 attached to relays.
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 4)]).unwrap();
        let mut net = GraphSequence::constant(g);
        let d = persistent_distances(&mut net, 5).unwrap();
        assert_eq!(d, vec![0, 1, 1, 2, 2]);
        assert!(is_pd_h(&mut net, 2, 5));
        assert!(!is_pd_h(&mut net, 1, 5));
    }

    #[test]
    fn changing_distance_is_not_persistent() {
        let g0 = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let g1 = Graph::from_edges(3, [(0, 1), (0, 2)]).unwrap();
        let mut net = GraphSequence::new(vec![g0, g1]).unwrap();
        assert_eq!(persistent_distances(&mut net, 2), None);
        assert!(!is_pd_h(&mut net, 2, 2));
    }

    #[test]
    fn rewiring_pd2_keeps_persistence() {
        // Leaves switch relays between rounds but stay at distance 2.
        let g0 = Graph::from_edges(5, [(0, 1), (0, 2), (1, 3), (1, 4)]).unwrap();
        let g1 = Graph::from_edges(5, [(0, 1), (0, 2), (2, 3), (2, 4)]).unwrap();
        let mut net = GraphSequence::new(vec![g0, g1]).unwrap();
        assert_eq!(persistent_distances(&mut net, 2), Some(vec![0, 1, 1, 2, 2]));
        assert!(is_pd_h(&mut net, 2, 2));
    }
}
