//! Property-based tests for graphs, dynamic networks and metrics.

use anonet_graph::{generators, metrics, pd, ChainExtended, DynamicNetwork, Graph, GraphSequence};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_edges(order: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..order, 0..order), 0..order * 2)
        .prop_map(|es| es.into_iter().filter(|(u, v)| u != v).collect())
}

proptest! {
    #[test]
    fn graph_invariants(order in 1usize..12, seed in arb_edges(11)) {
        let edges: Vec<_> = seed.into_iter().filter(|&(u, v)| u < order && v < order).collect();
        let g = Graph::from_edges(order, edges.clone()).unwrap();
        // Symmetry and degree sum.
        let degree_sum: usize = (0..order).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.size());
        for (u, v) in g.edges() {
            prop_assert!(u < v);
            prop_assert!(g.has_edge(v, u));
        }
        // BFS distances satisfy the triangle step: adjacent nodes differ by <= 1.
        let d = g.distances_from(0);
        for (u, v) in g.edges() {
            if let (Some(du), Some(dv)) = (d[u], d[v]) {
                prop_assert!(du.abs_diff(dv) <= 1);
            }
        }
    }

    #[test]
    fn random_connected_always_connected(order in 1usize..30, extra in 0usize..20, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_connected(order, extra, &mut rng);
        prop_assert!(g.is_connected());
        prop_assert_eq!(g.order(), order);
    }

    #[test]
    fn flood_duration_bounded_by_order(order in 2usize..15, extra in 0usize..5, seed in any::<u64>()) {
        // On any connected static graph a flood completes within order-1 rounds.
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_connected(order, extra, &mut rng);
        let mut net = GraphSequence::constant(g);
        let f = metrics::flood(&mut net, 0, 0, order as u32);
        prop_assert!(f.is_complete());
        prop_assert!(f.duration().unwrap() < order as u32 || order == 2);
    }

    #[test]
    fn flood_monotone_in_start_round_for_static(order in 2usize..10, seed in any::<u64>(), start in 0u32..5) {
        // Static networks: duration independent of the start round.
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_connected(order, 2, &mut rng);
        let mut net = GraphSequence::constant(g);
        let d0 = metrics::flood(&mut net, 1, 0, 64).duration();
        let ds = metrics::flood(&mut net, 1, start, 64).duration();
        prop_assert_eq!(d0, ds);
    }

    #[test]
    fn random_pd2_distances(relays in 1usize..6, leaves in 1usize..12, seed in any::<u64>()) {
        let layout = pd::Pd2Layout { relays, leaves };
        let mut net = pd::RandomPd2::new(layout, StdRng::seed_from_u64(seed));
        let d = metrics::persistent_distances(&mut net, 8).unwrap();
        prop_assert_eq!(d[0], 0);
        for j in 0..relays { prop_assert_eq!(d[layout.relay(j)], 1); }
        for i in 0..leaves { prop_assert_eq!(d[layout.leaf(i)], 2); }
    }

    #[test]
    fn chain_extension_shifts_distances(chain in 0usize..6, leaves in 1usize..6, seed in any::<u64>()) {
        let layout = pd::Pd2Layout { relays: 2, leaves };
        let inner = pd::RandomPd2::new(layout, StdRng::seed_from_u64(seed));
        let mut net = ChainExtended::new(inner, chain);
        prop_assert_eq!(net.order(), layout.order() + chain);
        let d = metrics::persistent_distances(&mut net, 6).unwrap();
        // Chain nodes at distance = index; inner nodes shifted by chain.
        #[allow(clippy::needless_range_loop)]
        for i in 0..=chain { prop_assert_eq!(d[i], i as u32); }
        for j in 0..2 { prop_assert_eq!(d[chain + 1 + j], chain as u32 + 1); }
        for l in 0..leaves { prop_assert_eq!(d[chain + 3 + l], chain as u32 + 2); }
    }
}
