//! Property-based tests for the simulator and the view machinery.

use anonet_graph::generators::RandomDynamic;
use anonet_graph::{Graph, GraphSequence};
use anonet_netsim::protocols::{flood_completion_round, FloodingProcess};
use anonet_netsim::{run_full_information, Role, Simulator, ViewInterner};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn flood_completes_on_connected_dynamics(order in 2usize..20, extra in 0usize..6, seed in any::<u64>()) {
        let net = RandomDynamic::new(order, extra, StdRng::seed_from_u64(seed));
        let done = flood_completion_round(net, 0, order as u32 + 2);
        prop_assert!(done.is_some(), "1-interval connectivity implies flooding completes");
        prop_assert!(done.unwrap() < order as u32, "at most order-1 rounds");
    }

    #[test]
    fn flood_source_choice_irrelevant_for_completeness(order in 2usize..12, src in 0usize..12, seed in any::<u64>()) {
        prop_assume!(src < order);
        let net = RandomDynamic::new(order, 2, StdRng::seed_from_u64(seed));
        prop_assert!(flood_completion_round(net, src, 2 * order as u32).is_some());
    }

    #[test]
    fn views_deterministic_and_interner_shared(order in 2usize..10, rounds in 1u32..6, seed in any::<u64>()) {
        // Same network, same interner: identical view ids. Different
        // interner: identical structure (checked via agreement length).
        let graph = {
            let mut rng = StdRng::seed_from_u64(seed);
            anonet_graph::generators::random_connected(order, 2, &mut rng)
        };
        let mut i = ViewInterner::new();
        let mut net1 = GraphSequence::constant(graph.clone());
        let mut net2 = GraphSequence::constant(graph);
        let a = run_full_information(&mut net1, rounds, &mut i);
        let b = run_full_information(&mut net2, rounds, &mut i);
        prop_assert_eq!(a.leader_agreement(&b, rounds as usize), rounds as usize);
    }

    #[test]
    fn anonymous_relabeling_is_invisible(order in 3usize..8, rounds in 1u32..5, seed in any::<u64>()) {
        // Permuting the anonymous nodes (keeping the leader fixed) gives
        // the leader the same view — the definition of anonymity.
        let mut rng = StdRng::seed_from_u64(seed);
        let g = anonet_graph::generators::random_connected(order, 2, &mut rng);
        // Build the rotation permutation on 1..order.
        let perm: Vec<usize> = std::iter::once(0)
            .chain((1..order).map(|v| 1 + (v % (order - 1))))
            .collect();
        let mut permuted = Graph::empty(order);
        for (u, v) in g.edges() {
            permuted.add_edge(perm[u], perm[v]).expect("valid");
        }
        let mut i = ViewInterner::new();
        let mut n1 = GraphSequence::constant(g);
        let mut n2 = GraphSequence::constant(permuted);
        let a = run_full_information(&mut n1, rounds, &mut i);
        let b = run_full_information(&mut n2, rounds, &mut i);
        for r in 0..=rounds as usize {
            prop_assert_eq!(a.leader_view(r), b.leader_view(r));
        }
    }

    #[test]
    fn view_depth_equals_round(order in 2usize..8, rounds in 0u32..6, seed in any::<u64>()) {
        let net = RandomDynamic::new(order, 1, StdRng::seed_from_u64(seed));
        let mut net = net;
        let mut i = ViewInterner::new();
        let run = run_full_information(&mut net, rounds, &mut i);
        for r in 0..=rounds as usize {
            for v in 0..order {
                prop_assert_eq!(i.depth(run.views[r][v]), r as u32);
            }
        }
    }

    #[test]
    fn interner_step_is_order_insensitive(parts in proptest::collection::vec(0usize..4, 0..8)) {
        let mut i = ViewInterner::new();
        let leaves = [
            i.leaf(Role::Leader),
            i.leaf(Role::Anonymous),
            {
                let a = i.leaf(Role::Anonymous);
                i.step(a, [])
            },
            {
                let l = i.leaf(Role::Leader);
                i.step(l, [])
            },
        ];
        let own = leaves[0];
        let multiset: Vec<_> = parts.iter().map(|&p| leaves[p]).collect();
        let mut reversed = multiset.clone();
        reversed.reverse();
        prop_assert_eq!(i.step(own, multiset), i.step(own, reversed));
    }

    #[test]
    fn simulator_round_accounting(n in 2usize..10, rounds in 1u32..6) {
        let net = GraphSequence::constant(Graph::complete(n));
        let mut sim = Simulator::new(net);
        let mut procs = FloodingProcess::population(n);
        let report = sim.run(&mut procs, rounds);
        prop_assert_eq!(report.rounds, rounds);
        prop_assert_eq!(sim.next_round(), rounds);
        // Complete graph: (n-1) messages per node per round.
        prop_assert_eq!(report.deliveries, (n * (n - 1)) as u64 * rounds as u64);
    }
}
