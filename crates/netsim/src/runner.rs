//! The synchronous round simulator.
//!
//! [`Simulator`] drives a population of [`Process`]es over the graphs
//! produced by a [`DynamicNetwork`] adversary: each round it collects every
//! node's broadcast, queries the adversary for `G_r`, and delivers each
//! message to the sender's round-`r` neighbours. Process 0 is the leader.

use crate::process::{Process, RecvContext, SendContext};
use anonet_graph::DynamicNetwork;
use anonet_trace::{NullSink, RoundEvent, TraceSink};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Per-round execution statistics collected by [`Simulator::run_traced`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// The absolute round index.
    pub round: u32,
    /// Messages delivered in this round (sum of inbox sizes).
    pub deliveries: u64,
    /// The largest inbox of the round (the maximum degree, since every
    /// node broadcasts exactly one message).
    pub max_inbox: usize,
    /// The leader's inbox size (its degree this round).
    pub leader_inbox: usize,
}

/// The outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Number of rounds executed by this `run` call.
    pub rounds: u32,
    /// The leader's output and the absolute round at which it first
    /// appeared, if it decided within the horizon.
    pub leader_output: Option<(u64, u32)>,
    /// Total number of point-to-point message deliveries.
    pub deliveries: u64,
}

impl RunReport {
    /// The leader's decision value, if any.
    pub fn output(&self) -> Option<u64> {
        self.leader_output.map(|(v, _)| v)
    }

    /// The round at which the leader decided, if it did.
    pub fn decision_round(&self) -> Option<u32> {
        self.leader_output.map(|(_, r)| r)
    }
}

/// A synchronous simulator over a dynamic network.
///
/// # Examples
///
/// Flood a token through a static star from the leader:
///
/// ```
/// use anonet_graph::{Graph, GraphSequence};
/// use anonet_netsim::protocols::FloodingProcess;
/// use anonet_netsim::Simulator;
///
/// let net = GraphSequence::constant(Graph::star(5)?);
/// let mut sim = Simulator::new(net);
/// let mut procs = FloodingProcess::population(5);
/// sim.run(&mut procs, 10);
/// assert!(procs.iter().all(FloodingProcess::is_informed));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Simulator<N> {
    net: N,
    degree_oracle: bool,
    shuffle_seed: Option<u64>,
    next_round: u32,
}

impl<N: DynamicNetwork> Simulator<N> {
    /// Creates a simulator over the given adversary/network.
    pub fn new(net: N) -> Simulator<N> {
        Simulator {
            net,
            degree_oracle: false,
            shuffle_seed: None,
            next_round: 0,
        }
    }

    /// Enables the local degree detector oracle of \[13\]: processes learn
    /// `|N(v, r)|` already in the send phase (see the paper's Discussion).
    pub fn with_degree_oracle(mut self) -> Simulator<N> {
        self.degree_oracle = true;
        self
    }

    /// Shuffles every inbox with a deterministic RNG before delivery,
    /// enforcing that protocols cannot extract information from message
    /// order (anonymity hygiene).
    pub fn shuffle_inboxes(mut self, seed: u64) -> Simulator<N> {
        self.shuffle_seed = Some(seed);
        self
    }

    /// The underlying network.
    pub fn network(&self) -> &N {
        &self.net
    }

    /// The round the next call to [`Simulator::run`] will execute first.
    /// Starts at 0 and advances with every executed round, so repeated
    /// `run` calls *continue* the same execution (e.g. `run(procs, 1)` in
    /// a loop steps round by round).
    pub fn next_round(&self) -> u32 {
        self.next_round
    }

    /// Runs the protocol for at most `max_rounds` further rounds, stopping
    /// early as soon as the leader (process 0) produces an output.
    ///
    /// # Panics
    ///
    /// Panics if `procs.len()` differs from the network's order.
    pub fn run<P: Process>(&mut self, procs: &mut [P], max_rounds: u32) -> RunReport {
        self.run_traced(procs, max_rounds).0
    }

    /// Like [`Simulator::run`], additionally recording per-round
    /// statistics (delivery counts, inbox sizes).
    ///
    /// # Panics
    ///
    /// Panics if `procs.len()` differs from the network's order.
    pub fn run_traced<P: Process>(
        &mut self,
        procs: &mut [P],
        max_rounds: u32,
    ) -> (RunReport, Vec<RoundStats>) {
        self.run_with_sink(procs, max_rounds, &mut NullSink)
    }

    /// Like [`Simulator::run_traced`], additionally emitting one
    /// [`RoundEvent`] per executed round to `sink` (with the absolute
    /// round index, the delivery count, the maximum inbox size and the
    /// leader's inbox size). The sink is flushed before returning, so a
    /// [`JsonlSink`](anonet_trace::JsonlSink) stream is complete when
    /// this call returns.
    ///
    /// # Examples
    ///
    /// ```
    /// use anonet_graph::{Graph, GraphSequence};
    /// use anonet_netsim::protocols::FloodingProcess;
    /// use anonet_netsim::Simulator;
    /// use anonet_trace::MemorySink;
    ///
    /// let net = GraphSequence::constant(Graph::star(5)?);
    /// let mut sim = Simulator::new(net);
    /// let mut procs = FloodingProcess::population(5);
    /// let mut sink = MemorySink::new();
    /// let (report, _) = sim.run_with_sink(&mut procs, 10, &mut sink);
    /// assert_eq!(sink.events().len() as u32, report.rounds);
    /// // Each event mirrors the RoundStats of the same round.
    /// assert_eq!(sink.events()[0].deliveries, Some(8));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `procs.len()` differs from the network's order.
    pub fn run_with_sink<P: Process, S: TraceSink>(
        &mut self,
        procs: &mut [P],
        max_rounds: u32,
        sink: &mut S,
    ) -> (RunReport, Vec<RoundStats>) {
        let n = self.net.order();
        assert_eq!(
            procs.len(),
            n,
            "need exactly one process per node ({} != {n})",
            procs.len()
        );
        let mut rng = self
            .shuffle_seed
            .map(|s| StdRng::seed_from_u64(s.wrapping_add(self.next_round as u64)));
        let mut deliveries = 0u64;

        let mut stats = Vec::new();

        if let Some(out) = procs[0].output() {
            sink.flush();
            return (
                RunReport {
                    rounds: 0,
                    leader_output: Some((out, self.next_round)),
                    deliveries,
                },
                stats,
            );
        }

        let first = self.next_round;
        for round in first..first.saturating_add(max_rounds) {
            self.next_round = round + 1;
            let graph = self.net.graph(round);
            debug_assert_eq!(graph.order(), n, "adversary changed the node set");

            // Send phase: every process broadcasts one message.
            let msgs: Vec<P::Msg> = procs
                .iter_mut()
                .enumerate()
                .map(|(v, p)| {
                    let ctx = SendContext {
                        round,
                        degree: self.degree_oracle.then(|| graph.degree(v) as u32),
                    };
                    p.send(&ctx)
                })
                .collect();

            // Receive phase: deliver neighbours' messages.
            let mut round_deliveries = 0u64;
            let mut max_inbox = 0usize;
            for (v, p) in procs.iter_mut().enumerate() {
                let mut inbox: Vec<P::Msg> = graph
                    .neighbors(v)
                    .iter()
                    .map(|&u| msgs[u].clone())
                    .collect();
                if let Some(rng) = rng.as_mut() {
                    inbox.shuffle(rng);
                }
                deliveries += inbox.len() as u64;
                round_deliveries += inbox.len() as u64;
                max_inbox = max_inbox.max(inbox.len());
                p.receive(RecvContext {
                    round,
                    inbox: &inbox,
                });
            }
            stats.push(RoundStats {
                round,
                deliveries: round_deliveries,
                max_inbox,
                leader_inbox: graph.degree(0),
            });
            sink.record(
                &RoundEvent::new(round)
                    .deliveries(round_deliveries)
                    .max_inbox(max_inbox as u64)
                    .leader_inbox(graph.degree(0) as u64),
            );

            if let Some(out) = procs[0].output() {
                sink.flush();
                return (
                    RunReport {
                        rounds: round + 1 - first,
                        leader_output: Some((out, round)),
                        deliveries,
                    },
                    stats,
                );
            }
        }

        sink.flush();
        (
            RunReport {
                rounds: max_rounds,
                leader_output: None,
                deliveries,
            },
            stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{Process, RecvContext, Role, SendContext};
    use anonet_graph::{Graph, GraphSequence};

    /// Leader counts distinct rounds in which it heard >= 1 message; decides
    /// after 3 rounds. Exercises the run loop end-to-end.
    #[derive(Clone)]
    struct RoundCounter {
        role: Role,
        heard: u64,
        rounds_done: u32,
    }

    impl RoundCounter {
        fn population(n: usize) -> Vec<RoundCounter> {
            (0..n)
                .map(|i| RoundCounter {
                    role: if i == 0 {
                        Role::Leader
                    } else {
                        Role::Anonymous
                    },
                    heard: 0,
                    rounds_done: 0,
                })
                .collect()
        }
    }

    impl Process for RoundCounter {
        type Msg = u8;

        fn send(&mut self, _ctx: &SendContext) -> u8 {
            1
        }

        fn receive(&mut self, ctx: RecvContext<'_, u8>) {
            self.heard += ctx.inbox.len() as u64;
            self.rounds_done = ctx.round + 1;
        }

        fn output(&self) -> Option<u64> {
            (self.role == Role::Leader && self.rounds_done >= 3).then_some(self.heard)
        }
    }

    #[test]
    fn run_executes_rounds_and_counts_deliveries() {
        let net = GraphSequence::constant(Graph::star(4).unwrap());
        let mut sim = Simulator::new(net);
        let mut procs = RoundCounter::population(4);
        let report = sim.run(&mut procs, 10);
        // Leader decides in the receive phase of round 2 (3rd round).
        assert_eq!(report.decision_round(), Some(2));
        assert_eq!(report.rounds, 3);
        // Star with 3 leaves: 6 deliveries per round, 3 rounds.
        assert_eq!(report.deliveries, 18);
        // Leader heard 3 messages per round.
        assert_eq!(report.output(), Some(9));
    }

    #[test]
    fn run_traced_collects_round_stats() {
        let net = GraphSequence::constant(Graph::star(4).unwrap());
        let mut sim = Simulator::new(net);
        let mut procs = RoundCounter::population(4);
        let (report, stats) = sim.run_traced(&mut procs, 10);
        assert_eq!(report.rounds, 3);
        assert_eq!(stats.len(), 3);
        for (i, s) in stats.iter().enumerate() {
            assert_eq!(s.round, i as u32);
            assert_eq!(s.deliveries, 6, "star(4): 3 + 3 x 1 deliveries");
            assert_eq!(s.max_inbox, 3, "the hub's inbox");
            assert_eq!(s.leader_inbox, 3, "leader is the hub");
        }
    }

    #[test]
    fn horizon_exhaustion() {
        let net = GraphSequence::constant(Graph::star(4).unwrap());
        let mut sim = Simulator::new(net);
        let mut procs = RoundCounter::population(4);
        let report = sim.run(&mut procs, 2);
        assert_eq!(report.leader_output, None);
        assert_eq!(report.rounds, 2);
    }

    #[test]
    #[should_panic(expected = "one process per node")]
    fn population_size_checked() {
        let net = GraphSequence::constant(Graph::star(4).unwrap());
        let mut sim = Simulator::new(net);
        let mut procs = RoundCounter::population(3);
        sim.run(&mut procs, 1);
    }

    /// A process that records whether it ever saw a degree hint.
    struct DegreeProbe {
        saw_degree: Option<u32>,
        done: bool,
    }

    impl Process for DegreeProbe {
        type Msg = ();

        fn send(&mut self, ctx: &SendContext) {
            if ctx.degree.is_some() {
                self.saw_degree = ctx.degree;
            }
        }

        fn receive(&mut self, _ctx: RecvContext<'_, ()>) {
            self.done = true;
        }

        fn output(&self) -> Option<u64> {
            self.done
                .then(|| self.saw_degree.map_or(u64::MAX, u64::from))
        }
    }

    #[test]
    fn degree_oracle_toggle() {
        let mk = || {
            vec![
                DegreeProbe {
                    saw_degree: None,
                    done: false,
                },
                DegreeProbe {
                    saw_degree: None,
                    done: false,
                },
            ]
        };
        let net = GraphSequence::constant(Graph::from_edges(2, [(0, 1)]).unwrap());

        let mut plain = Simulator::new(net.clone());
        let mut procs = mk();
        assert_eq!(plain.run(&mut procs, 4).output(), Some(u64::MAX));

        let mut oracle = Simulator::new(net).with_degree_oracle();
        let mut procs = mk();
        assert_eq!(oracle.run(&mut procs, 4).output(), Some(1));
    }

    #[test]
    fn shuffled_inboxes_are_deterministic_per_seed() {
        #[derive(Clone)]
        struct Tagger {
            id: u64,
            log: Vec<u64>,
        }
        impl Process for Tagger {
            type Msg = u64;
            fn send(&mut self, _ctx: &SendContext) -> u64 {
                self.id
            }
            fn receive(&mut self, ctx: RecvContext<'_, u64>) {
                self.log.extend_from_slice(ctx.inbox);
            }
        }
        let run = |seed: u64| {
            let net = GraphSequence::constant(Graph::complete(5));
            let mut sim = Simulator::new(net).shuffle_inboxes(seed);
            let mut procs: Vec<Tagger> = (0..5)
                .map(|id| Tagger {
                    id,
                    log: Vec::new(),
                })
                .collect();
            sim.run(&mut procs, 3);
            procs[0].log.clone()
        };
        assert_eq!(run(1), run(1));
        // Contents are the same multiset regardless of seed.
        let mut a = run(1);
        let mut b = run(2);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
