//! The synchronous round simulator.
//!
//! [`Simulator`] drives a population of [`Process`]es over the graphs
//! produced by a [`DynamicNetwork`] adversary: each round it collects every
//! node's broadcast, queries the adversary for `G_r`, and delivers each
//! message to the sender's round-`r` neighbours. Process 0 is the leader.

use crate::process::{Process, RecvContext, SendContext};
use anonet_graph::DynamicNetwork;
use anonet_trace::{NullSink, RoundEvent, TraceSink};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Nodes per work chunk of the threaded receive phase (the fixed
/// work-splitting grain — see `docs/SCALING.md`).
const CHUNK_NODES: usize = 8192;

/// A per-`(seed, round, node)` RNG for inbox shuffling on the threaded
/// path: a splitmix64-style mix, so the shuffle of one inbox never
/// depends on which worker handled which node (byte-identical at every
/// thread count).
fn node_rng(seed: u64, round: u32, node: usize) -> StdRng {
    let mut z = seed
        ^ (u64::from(round) << 32)
        ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Per-round execution statistics collected by [`Simulator::run_traced`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// The absolute round index.
    pub round: u32,
    /// Messages delivered in this round (sum of inbox sizes).
    pub deliveries: u64,
    /// The largest inbox of the round (the maximum degree, since every
    /// node broadcasts exactly one message).
    pub max_inbox: usize,
    /// The leader's inbox size (its degree this round).
    pub leader_inbox: usize,
}

/// The outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Number of rounds executed by this `run` call.
    pub rounds: u32,
    /// The leader's output and the absolute round at which it first
    /// appeared, if it decided within the horizon.
    pub leader_output: Option<(u64, u32)>,
    /// Total number of point-to-point message deliveries.
    pub deliveries: u64,
}

impl RunReport {
    /// The leader's decision value, if any.
    pub fn output(&self) -> Option<u64> {
        self.leader_output.map(|(v, _)| v)
    }

    /// The round at which the leader decided, if it did.
    pub fn decision_round(&self) -> Option<u32> {
        self.leader_output.map(|(_, r)| r)
    }
}

/// A synchronous simulator over a dynamic network.
///
/// # Examples
///
/// Flood a token through a static star from the leader:
///
/// ```
/// use anonet_graph::{Graph, GraphSequence};
/// use anonet_netsim::protocols::FloodingProcess;
/// use anonet_netsim::Simulator;
///
/// let net = GraphSequence::constant(Graph::star(5)?);
/// let mut sim = Simulator::new(net);
/// let mut procs = FloodingProcess::population(5);
/// sim.run(&mut procs, 10);
/// assert!(procs.iter().all(FloodingProcess::is_informed));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Simulator<N> {
    net: N,
    degree_oracle: bool,
    shuffle_seed: Option<u64>,
    next_round: u32,
    threads: usize,
}

impl<N: DynamicNetwork> Simulator<N> {
    /// Creates a simulator over the given adversary/network.
    pub fn new(net: N) -> Simulator<N> {
        Simulator {
            net,
            degree_oracle: false,
            shuffle_seed: None,
            next_round: 0,
            threads: 1,
        }
    }

    /// Sets the worker count for [`Simulator::run_threaded`] and friends
    /// (0 acts as 1). The threaded runner's output is byte-identical at
    /// every thread count; the plain [`Simulator::run`] entry points
    /// stay serial regardless of this setting.
    pub fn with_threads(mut self, threads: usize) -> Simulator<N> {
        self.threads = threads.max(1);
        self
    }

    /// Enables the local degree detector oracle of \[13\]: processes learn
    /// `|N(v, r)|` already in the send phase (see the paper's Discussion).
    pub fn with_degree_oracle(mut self) -> Simulator<N> {
        self.degree_oracle = true;
        self
    }

    /// Shuffles every inbox with a deterministic RNG before delivery,
    /// enforcing that protocols cannot extract information from message
    /// order (anonymity hygiene).
    pub fn shuffle_inboxes(mut self, seed: u64) -> Simulator<N> {
        self.shuffle_seed = Some(seed);
        self
    }

    /// The underlying network.
    pub fn network(&self) -> &N {
        &self.net
    }

    /// The round the next call to [`Simulator::run`] will execute first.
    /// Starts at 0 and advances with every executed round, so repeated
    /// `run` calls *continue* the same execution (e.g. `run(procs, 1)` in
    /// a loop steps round by round).
    pub fn next_round(&self) -> u32 {
        self.next_round
    }

    /// Runs the protocol for at most `max_rounds` further rounds, stopping
    /// early as soon as the leader (process 0) produces an output.
    ///
    /// # Panics
    ///
    /// Panics if `procs.len()` differs from the network's order.
    pub fn run<P: Process>(&mut self, procs: &mut [P], max_rounds: u32) -> RunReport {
        self.run_traced(procs, max_rounds).0
    }

    /// Like [`Simulator::run`], additionally recording per-round
    /// statistics (delivery counts, inbox sizes).
    ///
    /// # Panics
    ///
    /// Panics if `procs.len()` differs from the network's order.
    pub fn run_traced<P: Process>(
        &mut self,
        procs: &mut [P],
        max_rounds: u32,
    ) -> (RunReport, Vec<RoundStats>) {
        self.run_with_sink(procs, max_rounds, &mut NullSink)
    }

    /// Like [`Simulator::run_traced`], additionally emitting one
    /// [`RoundEvent`] per executed round to `sink` (with the absolute
    /// round index, the delivery count, the maximum inbox size, the
    /// leader's inbox size, and the round's live `connections` — the
    /// edge count of that round's graph, the same facet the socketed
    /// runtime uses for its barrier's live-connection count). The sink
    /// is flushed before returning, so a
    /// [`JsonlSink`](anonet_trace::JsonlSink) stream is complete when
    /// this call returns.
    ///
    /// # Examples
    ///
    /// ```
    /// use anonet_graph::{Graph, GraphSequence};
    /// use anonet_netsim::protocols::FloodingProcess;
    /// use anonet_netsim::Simulator;
    /// use anonet_trace::MemorySink;
    ///
    /// let net = GraphSequence::constant(Graph::star(5)?);
    /// let mut sim = Simulator::new(net);
    /// let mut procs = FloodingProcess::population(5);
    /// let mut sink = MemorySink::new();
    /// let (report, _) = sim.run_with_sink(&mut procs, 10, &mut sink);
    /// assert_eq!(sink.events().len() as u32, report.rounds);
    /// // Each event mirrors the RoundStats of the same round, plus the
    /// // round's live edge count in the `connections` facet.
    /// assert_eq!(sink.events()[0].deliveries, Some(8));
    /// assert_eq!(sink.events()[0].connections, Some(4));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `procs.len()` differs from the network's order.
    pub fn run_with_sink<P: Process, S: TraceSink>(
        &mut self,
        procs: &mut [P],
        max_rounds: u32,
        sink: &mut S,
    ) -> (RunReport, Vec<RoundStats>) {
        let n = self.net.order();
        assert_eq!(
            procs.len(),
            n,
            "need exactly one process per node ({} != {n})",
            procs.len()
        );
        let mut rng = self
            .shuffle_seed
            .map(|s| StdRng::seed_from_u64(s.wrapping_add(self.next_round as u64)));
        let mut deliveries = 0u64;

        let mut stats = Vec::new();

        if let Some(out) = procs[0].output() {
            sink.flush();
            return (
                RunReport {
                    rounds: 0,
                    leader_output: Some((out, self.next_round)),
                    deliveries,
                },
                stats,
            );
        }

        let first = self.next_round;
        // Send/inbox buffers are reused across rounds and nodes — the
        // round loop allocates only when a round outgrows every earlier
        // one.
        let mut msgs: Vec<P::Msg> = Vec::new();
        let mut inbox: Vec<P::Msg> = Vec::new();
        for round in first..first.saturating_add(max_rounds) {
            self.next_round = round + 1;
            let graph = self.net.graph(round);
            debug_assert_eq!(graph.order(), n, "adversary changed the node set");

            // Send phase: every process broadcasts one message.
            msgs.clear();
            msgs.extend(procs.iter_mut().enumerate().map(|(v, p)| {
                let ctx = SendContext {
                    round,
                    degree: self.degree_oracle.then(|| graph.degree(v) as u32),
                };
                p.send(&ctx)
            }));

            // Receive phase: deliver neighbours' messages.
            let mut round_deliveries = 0u64;
            let mut max_inbox = 0usize;
            for (v, p) in procs.iter_mut().enumerate() {
                inbox.clear();
                inbox.extend(graph.neighbors(v).iter().map(|&u| msgs[u].clone()));
                if let Some(rng) = rng.as_mut() {
                    inbox.shuffle(rng);
                }
                deliveries += inbox.len() as u64;
                round_deliveries += inbox.len() as u64;
                max_inbox = max_inbox.max(inbox.len());
                p.receive(RecvContext {
                    round,
                    inbox: &inbox,
                });
            }
            stats.push(RoundStats {
                round,
                deliveries: round_deliveries,
                max_inbox,
                leader_inbox: graph.degree(0),
            });
            sink.record(
                &RoundEvent::new(round)
                    .deliveries(round_deliveries)
                    .max_inbox(max_inbox as u64)
                    .leader_inbox(graph.degree(0) as u64)
                    .connections(graph.size() as u64),
            );

            if let Some(out) = procs[0].output() {
                sink.flush();
                return (
                    RunReport {
                        rounds: round + 1 - first,
                        leader_output: Some((out, round)),
                        deliveries,
                    },
                    stats,
                );
            }
        }

        sink.flush();
        (
            RunReport {
                rounds: max_rounds,
                leader_output: None,
                deliveries,
            },
            stats,
        )
    }

    /// [`Simulator::run`] on the node-parallel receive path, using the
    /// worker count set by [`Simulator::with_threads`].
    ///
    /// # Panics
    ///
    /// Panics if `procs.len()` differs from the network's order.
    pub fn run_threaded<P>(&mut self, procs: &mut [P], max_rounds: u32) -> RunReport
    where
        P: Process + Send,
        P::Msg: Send + Sync,
    {
        self.run_with_sink_threaded(procs, max_rounds, &mut NullSink).0
    }

    /// [`Simulator::run_traced`] on the node-parallel receive path.
    ///
    /// # Panics
    ///
    /// Panics if `procs.len()` differs from the network's order.
    pub fn run_traced_threaded<P>(
        &mut self,
        procs: &mut [P],
        max_rounds: u32,
    ) -> (RunReport, Vec<RoundStats>)
    where
        P: Process + Send,
        P::Msg: Send + Sync,
    {
        self.run_with_sink_threaded(procs, max_rounds, &mut NullSink)
    }

    /// [`Simulator::run_with_sink`] on the node-parallel receive path.
    ///
    /// The node range is split into fixed contiguous chunks; workers
    /// claim chunks from an atomic counter and per-chunk statistics are
    /// merged in chunk order — the same deterministic work-splitting
    /// scheme as the experiment grid runner (`docs/RUNNER.md`), so the
    /// report, the stats, every trace event and every process state are
    /// **byte-identical at every thread count**.
    ///
    /// One deliberate divergence from the serial path: with
    /// [`Simulator::shuffle_inboxes`] enabled, each inbox is shuffled by
    /// an RNG derived from `(seed, round, node)` instead of one
    /// sequential RNG walked in node order (which would make node `v`'s
    /// shuffle depend on all earlier inbox sizes — unparallelizable).
    /// Shuffled runs are therefore deterministic per seed on each path
    /// but differ *between* the serial and threaded paths; unshuffled
    /// runs agree everywhere.
    ///
    /// # Panics
    ///
    /// Panics if `procs.len()` differs from the network's order.
    pub fn run_with_sink_threaded<P, S>(
        &mut self,
        procs: &mut [P],
        max_rounds: u32,
        sink: &mut S,
    ) -> (RunReport, Vec<RoundStats>)
    where
        P: Process + Send,
        P::Msg: Send + Sync,
        S: TraceSink,
    {
        let n = self.net.order();
        assert_eq!(
            procs.len(),
            n,
            "need exactly one process per node ({} != {n})",
            procs.len()
        );
        let mut deliveries = 0u64;
        let mut stats = Vec::new();

        if let Some(out) = procs[0].output() {
            sink.flush();
            return (
                RunReport {
                    rounds: 0,
                    leader_output: Some((out, self.next_round)),
                    deliveries,
                },
                stats,
            );
        }

        let first = self.next_round;
        let mut msgs: Vec<P::Msg> = Vec::new();
        for round in first..first.saturating_add(max_rounds) {
            self.next_round = round + 1;
            let graph = self.net.graph(round);
            debug_assert_eq!(graph.order(), n, "adversary changed the node set");

            // Send phase (serial: one cheap call per node).
            msgs.clear();
            msgs.extend(procs.iter_mut().enumerate().map(|(v, p)| {
                let ctx = SendContext {
                    round,
                    degree: self.degree_oracle.then(|| graph.degree(v) as u32),
                };
                p.send(&ctx)
            }));

            // Receive phase: chunks of nodes claimed from an atomic
            // counter; per-chunk (deliveries, max_inbox) land in the
            // chunk's slot and merge in chunk order below.
            struct ChunkSlot<'a, P> {
                base: usize,
                procs: &'a mut [P],
                deliveries: u64,
                max_inbox: usize,
            }
            let slots: Vec<Mutex<ChunkSlot<'_, P>>> = procs
                .chunks_mut(CHUNK_NODES)
                .enumerate()
                .map(|(i, chunk)| {
                    Mutex::new(ChunkSlot {
                        base: i * CHUNK_NODES,
                        procs: chunk,
                        deliveries: 0,
                        max_inbox: 0,
                    })
                })
                .collect();
            let workers = self.threads.min(slots.len()).max(1);
            let next = AtomicUsize::new(0);
            let shuffle_seed = self.shuffle_seed;
            let graph_ref = &graph;
            let msgs_ref = &msgs;
            std::thread::scope(|scope| {
                let work = || {
                    let mut inbox: Vec<P::Msg> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(slot) = slots.get(i) else { break };
                        let mut guard = slot.lock().expect("chunk slot never poisoned");
                        let slot = &mut *guard;
                        for (off, p) in slot.procs.iter_mut().enumerate() {
                            let v = slot.base + off;
                            inbox.clear();
                            inbox.extend(
                                graph_ref.neighbors(v).iter().map(|&u| msgs_ref[u].clone()),
                            );
                            if let Some(seed) = shuffle_seed {
                                inbox.shuffle(&mut node_rng(seed, round, v));
                            }
                            slot.deliveries += inbox.len() as u64;
                            slot.max_inbox = slot.max_inbox.max(inbox.len());
                            p.receive(RecvContext {
                                round,
                                inbox: &inbox,
                            });
                        }
                    }
                };
                if workers <= 1 {
                    work();
                } else {
                    for _ in 0..workers {
                        scope.spawn(work);
                    }
                }
            });
            let mut round_deliveries = 0u64;
            let mut max_inbox = 0usize;
            for slot in &slots {
                let slot = slot.lock().expect("chunk slot never poisoned");
                round_deliveries += slot.deliveries;
                max_inbox = max_inbox.max(slot.max_inbox);
            }
            drop(slots);
            deliveries += round_deliveries;
            stats.push(RoundStats {
                round,
                deliveries: round_deliveries,
                max_inbox,
                leader_inbox: graph.degree(0),
            });
            sink.record(
                &RoundEvent::new(round)
                    .deliveries(round_deliveries)
                    .max_inbox(max_inbox as u64)
                    .leader_inbox(graph.degree(0) as u64)
                    .connections(graph.size() as u64),
            );

            if let Some(out) = procs[0].output() {
                sink.flush();
                return (
                    RunReport {
                        rounds: round + 1 - first,
                        leader_output: Some((out, round)),
                        deliveries,
                    },
                    stats,
                );
            }
        }

        sink.flush();
        (
            RunReport {
                rounds: max_rounds,
                leader_output: None,
                deliveries,
            },
            stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{Process, RecvContext, Role, SendContext};
    use anonet_graph::{Graph, GraphSequence};

    /// Leader counts distinct rounds in which it heard >= 1 message; decides
    /// after 3 rounds. Exercises the run loop end-to-end.
    #[derive(Clone)]
    struct RoundCounter {
        role: Role,
        heard: u64,
        rounds_done: u32,
    }

    impl RoundCounter {
        fn population(n: usize) -> Vec<RoundCounter> {
            (0..n)
                .map(|i| RoundCounter {
                    role: if i == 0 {
                        Role::Leader
                    } else {
                        Role::Anonymous
                    },
                    heard: 0,
                    rounds_done: 0,
                })
                .collect()
        }
    }

    impl Process for RoundCounter {
        type Msg = u8;

        fn send(&mut self, _ctx: &SendContext) -> u8 {
            1
        }

        fn receive(&mut self, ctx: RecvContext<'_, u8>) {
            self.heard += ctx.inbox.len() as u64;
            self.rounds_done = ctx.round + 1;
        }

        fn output(&self) -> Option<u64> {
            (self.role == Role::Leader && self.rounds_done >= 3).then_some(self.heard)
        }
    }

    #[test]
    fn run_executes_rounds_and_counts_deliveries() {
        let net = GraphSequence::constant(Graph::star(4).unwrap());
        let mut sim = Simulator::new(net);
        let mut procs = RoundCounter::population(4);
        let report = sim.run(&mut procs, 10);
        // Leader decides in the receive phase of round 2 (3rd round).
        assert_eq!(report.decision_round(), Some(2));
        assert_eq!(report.rounds, 3);
        // Star with 3 leaves: 6 deliveries per round, 3 rounds.
        assert_eq!(report.deliveries, 18);
        // Leader heard 3 messages per round.
        assert_eq!(report.output(), Some(9));
    }

    #[test]
    fn run_traced_collects_round_stats() {
        let net = GraphSequence::constant(Graph::star(4).unwrap());
        let mut sim = Simulator::new(net);
        let mut procs = RoundCounter::population(4);
        let (report, stats) = sim.run_traced(&mut procs, 10);
        assert_eq!(report.rounds, 3);
        assert_eq!(stats.len(), 3);
        for (i, s) in stats.iter().enumerate() {
            assert_eq!(s.round, i as u32);
            assert_eq!(s.deliveries, 6, "star(4): 3 + 3 x 1 deliveries");
            assert_eq!(s.max_inbox, 3, "the hub's inbox");
            assert_eq!(s.leader_inbox, 3, "leader is the hub");
        }
    }

    #[test]
    fn horizon_exhaustion() {
        let net = GraphSequence::constant(Graph::star(4).unwrap());
        let mut sim = Simulator::new(net);
        let mut procs = RoundCounter::population(4);
        let report = sim.run(&mut procs, 2);
        assert_eq!(report.leader_output, None);
        assert_eq!(report.rounds, 2);
    }

    #[test]
    #[should_panic(expected = "one process per node")]
    fn population_size_checked() {
        let net = GraphSequence::constant(Graph::star(4).unwrap());
        let mut sim = Simulator::new(net);
        let mut procs = RoundCounter::population(3);
        sim.run(&mut procs, 1);
    }

    /// A process that records whether it ever saw a degree hint.
    struct DegreeProbe {
        saw_degree: Option<u32>,
        done: bool,
    }

    impl Process for DegreeProbe {
        type Msg = ();

        fn send(&mut self, ctx: &SendContext) {
            if ctx.degree.is_some() {
                self.saw_degree = ctx.degree;
            }
        }

        fn receive(&mut self, _ctx: RecvContext<'_, ()>) {
            self.done = true;
        }

        fn output(&self) -> Option<u64> {
            self.done
                .then(|| self.saw_degree.map_or(u64::MAX, u64::from))
        }
    }

    #[test]
    fn degree_oracle_toggle() {
        let mk = || {
            vec![
                DegreeProbe {
                    saw_degree: None,
                    done: false,
                },
                DegreeProbe {
                    saw_degree: None,
                    done: false,
                },
            ]
        };
        let net = GraphSequence::constant(Graph::from_edges(2, [(0, 1)]).unwrap());

        let mut plain = Simulator::new(net.clone());
        let mut procs = mk();
        assert_eq!(plain.run(&mut procs, 4).output(), Some(u64::MAX));

        let mut oracle = Simulator::new(net).with_degree_oracle();
        let mut procs = mk();
        assert_eq!(oracle.run(&mut procs, 4).output(), Some(1));
    }

    #[test]
    fn threaded_run_is_byte_identical_across_thread_counts() {
        // Unshuffled: serial, threaded(1) and threaded(4) must agree on
        // the report, the stats and every process state.
        let run = |threads: Option<usize>| {
            let net = GraphSequence::constant(Graph::star(64).unwrap());
            let mut sim = Simulator::new(net);
            let mut procs = RoundCounter::population(64);
            let out = match threads {
                None => sim.run_traced(&mut procs, 10),
                Some(t) => {
                    sim = sim.with_threads(t);
                    sim.run_traced_threaded(&mut procs, 10)
                }
            };
            let heard: Vec<u64> = procs.iter().map(|p| p.heard).collect();
            (out, heard)
        };
        let serial = run(None);
        assert_eq!(serial, run(Some(1)));
        assert_eq!(serial, run(Some(4)));
    }

    #[test]
    fn threaded_shuffle_is_thread_count_invariant() {
        #[derive(Clone, PartialEq, Debug)]
        struct Logger {
            id: u64,
            log: Vec<u64>,
        }
        impl Process for Logger {
            type Msg = u64;
            fn send(&mut self, _ctx: &SendContext) -> u64 {
                self.id
            }
            fn receive(&mut self, ctx: RecvContext<'_, u64>) {
                self.log.extend_from_slice(ctx.inbox);
            }
        }
        let run = |threads: usize| {
            let net = GraphSequence::constant(Graph::complete(12));
            let mut sim = Simulator::new(net)
                .shuffle_inboxes(7)
                .with_threads(threads);
            let mut procs: Vec<Logger> = (0..12)
                .map(|id| Logger {
                    id,
                    log: Vec::new(),
                })
                .collect();
            sim.run_threaded(&mut procs, 3);
            procs
        };
        // The per-(seed, round, node) RNG makes shuffled runs identical
        // no matter how nodes are distributed over workers.
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn shuffled_inboxes_are_deterministic_per_seed() {
        #[derive(Clone)]
        struct Tagger {
            id: u64,
            log: Vec<u64>,
        }
        impl Process for Tagger {
            type Msg = u64;
            fn send(&mut self, _ctx: &SendContext) -> u64 {
                self.id
            }
            fn receive(&mut self, ctx: RecvContext<'_, u64>) {
                self.log.extend_from_slice(ctx.inbox);
            }
        }
        let run = |seed: u64| {
            let net = GraphSequence::constant(Graph::complete(5));
            let mut sim = Simulator::new(net).shuffle_inboxes(seed);
            let mut procs: Vec<Tagger> = (0..5)
                .map(|id| Tagger {
                    id,
                    log: Vec::new(),
                })
                .collect();
            sim.run(&mut procs, 3);
            procs[0].log.clone()
        };
        assert_eq!(run(1), run(1));
        // Contents are the same multiset regardless of seed.
        let mut a = run(1);
        let mut b = run(2);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
