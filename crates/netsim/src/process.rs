//! Round-based processes.
//!
//! The paper's computational model (§3): a synchronous round has a *send*
//! phase, in which every node broadcasts one message to its (unknown)
//! current neighbourhood, and a *receive* phase, in which it processes the
//! messages delivered by the adversary's graph for that round. Nodes are
//! anonymous and deterministic; only the leader starts in a distinguished
//! state. Bandwidth is unlimited — messages may be arbitrarily large.

use core::fmt;

/// Whether a process is the distinguished leader `v_l` or an anonymous
/// node. The leader is the only process allowed a distinct initial state
/// (counting is impossible without one, Michail et al. \[15\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// The unique leader `v_l`.
    Leader,
    /// An anonymous node; all anonymous nodes start in identical states.
    Anonymous,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Leader => write!(f, "leader"),
            Role::Anonymous => write!(f, "anonymous"),
        }
    }
}

/// Information available to a process in the send phase.
///
/// In the base model a node does **not** know its degree `|N(v, r)|`
/// before the receive phase; `degree` is `Some` only when the simulator
/// runs with the *local degree detector* oracle of Di Luna et al. \[13\]
/// (the paper's Discussion shows this oracle collapses the `Ω(log n)`
/// bound to `O(1)` in restricted `G(PD)_2` networks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendContext {
    /// The current round.
    pub round: u32,
    /// The node's degree this round, if the degree oracle is enabled.
    pub degree: Option<u32>,
}

/// Information delivered to a process in the receive phase.
#[derive(Debug)]
pub struct RecvContext<'a, M> {
    /// The current round.
    pub round: u32,
    /// Messages from the node's round-`r` neighbours.
    ///
    /// The slice order is an artifact of the simulator, not information:
    /// anonymous algorithms must treat the inbox as a multiset. (The
    /// simulator can shuffle inboxes to enforce this; see
    /// [`Simulator::shuffle_inboxes`](crate::Simulator::shuffle_inboxes).)
    pub inbox: &'a [M],
}

/// A deterministic round-based process.
///
/// Implementations must be *anonymous*: every [`Role::Anonymous`] process
/// of a protocol starts in the same state, so behaviour may depend only on
/// the role, the round and the received message multisets.
pub trait Process {
    /// The message type broadcast each round (unlimited bandwidth).
    type Msg: Clone;

    /// The send phase: produce this round's broadcast message.
    fn send(&mut self, ctx: &SendContext) -> Self::Msg;

    /// The receive phase: absorb the neighbours' messages.
    fn receive(&mut self, ctx: RecvContext<'_, Self::Msg>);

    /// The process's decision, if it has one. For counting protocols the
    /// leader returns `Some(count)` when it terminates (Definition 2);
    /// non-leader processes return `None`.
    fn output(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A process that counts rounds and echoes how many messages it saw.
    struct Echo {
        seen: u64,
    }

    impl Process for Echo {
        type Msg = u64;

        fn send(&mut self, _ctx: &SendContext) -> u64 {
            self.seen
        }

        fn receive(&mut self, ctx: RecvContext<'_, u64>) {
            self.seen += ctx.inbox.len() as u64;
        }

        fn output(&self) -> Option<u64> {
            Some(self.seen)
        }
    }

    #[test]
    fn process_trait_object_safety() {
        // The trait is usable as a boxed object for homogeneous message types.
        let mut p: Box<dyn Process<Msg = u64>> = Box::new(Echo { seen: 0 });
        let m = p.send(&SendContext {
            round: 0,
            degree: None,
        });
        assert_eq!(m, 0);
        p.receive(RecvContext {
            round: 0,
            inbox: &[1, 2],
        });
        assert_eq!(p.output(), Some(2));
    }

    #[test]
    fn role_display() {
        assert_eq!(Role::Leader.to_string(), "leader");
        assert_eq!(Role::Anonymous.to_string(), "anonymous");
    }
}
