//! Synchronous simulator for anonymous dynamic networks.
//!
//! This crate implements the computational model of §3 of *"Investigating
//! the Cost of Anonymity on Dynamic Networks"* (Di Luna & Baldoni, PODC
//! 2015): anonymous, deterministic processes with a distinguished leader,
//! communicating by anonymous broadcast with unlimited bandwidth over a
//! dynamic graph chosen by an adversary, in synchronous send/receive
//! rounds.
//!
//! * [`Process`] / [`Role`] — the protocol interface (anonymous nodes +
//!   one leader; optional degree-detector oracle per \[13\]);
//! * [`Simulator`] — the round loop over any
//!   [`DynamicNetwork`](anonet_graph::DynamicNetwork) adversary;
//! * [`ViewInterner`] / [`run_full_information`] — hash-consed
//!   full-information views, the information-theoretic upper envelope of
//!   every deterministic anonymous algorithm (used to verify the paper's
//!   indistinguishability constructions);
//! * [`protocols`] — reference protocols (flooding / dissemination).
//!
//! # Examples
//!
//! ```
//! use anonet_graph::{Graph, GraphSequence};
//! use anonet_netsim::{run_full_information, ViewInterner};
//!
//! // Two star networks of different sizes: the leader's views diverge
//! // after one round — counting in G(PD)_1 is O(1).
//! let mut interner = ViewInterner::new();
//! let mut small = GraphSequence::constant(Graph::star(4)?);
//! let mut large = GraphSequence::constant(Graph::star(7)?);
//! let a = run_full_information(&mut small, 2, &mut interner);
//! let b = run_full_information(&mut large, 2, &mut interner);
//! assert_ne!(a.leader_view(1), b.leader_view(1));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod process;
pub mod protocols;
mod runner;
mod view;

pub use process::{Process, RecvContext, Role, SendContext};
pub use runner::{RoundStats, RunReport, Simulator};
pub use view::{run_full_information, FullInfoRun, ViewId, ViewInterner, ViewRef};

/// Structured round tracing ([`TraceSink`](anonet_trace::TraceSink),
/// [`RoundEvent`](anonet_trace::RoundEvent), the JSONL sinks), re-exported
/// so simulator users need no separate dependency.
pub use anonet_trace as trace;
