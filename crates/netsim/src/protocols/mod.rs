//! Reference protocols for the simulator.
//!
//! These are the message-passing building blocks the paper reasons about:
//! flooding (the dissemination primitive defining the dynamic diameter `D`,
//! §3) and all-to-all token dissemination (the §2 benchmark, trivially
//! `O(D)` with unlimited bandwidth) — counting protocols live in
//! `anonet-core`.

mod flooding;
mod tokens;

pub use flooding::{flood_completion_round, FloodingProcess};
pub use tokens::{disseminate_all, TokenProcess};
