//! Flooding: the dissemination primitive.
//!
//! A node *floods* a message by broadcasting it every round; every
//! recipient re-floods it (§3). The number of rounds until every node is
//! informed, maximized over sources and start rounds, is the dynamic
//! diameter `D` — the baseline against which the paper measures the extra
//! `Ω(log |V|)` cost of counting.

use crate::process::{Process, RecvContext, SendContext};
use crate::runner::Simulator;
use anonet_graph::DynamicNetwork;

/// A process participating in a single-token flood.
///
/// The source starts informed; every informed node broadcasts `true`.
/// Termination is externally observed (a node cannot know the flood is
/// complete without counting — that observation *is* the paper's gap).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FloodingProcess {
    informed_at: Option<u32>,
    start_informed: bool,
}

impl FloodingProcess {
    /// A population of `n` processes in which node `src` is the source.
    ///
    /// # Panics
    ///
    /// Panics if `src >= n`.
    pub fn population_from(n: usize, src: usize) -> Vec<FloodingProcess> {
        assert!(src < n, "source out of range");
        (0..n)
            .map(|v| FloodingProcess {
                informed_at: None,
                start_informed: v == src,
            })
            .collect()
    }

    /// A population of `n` processes with the leader (node 0) as source.
    pub fn population(n: usize) -> Vec<FloodingProcess> {
        FloodingProcess::population_from(n, 0)
    }

    /// Whether this process holds the token.
    pub fn is_informed(&self) -> bool {
        self.start_informed || self.informed_at.is_some()
    }

    /// The round in which the token arrived (`None` for the source or
    /// uninformed processes).
    pub fn informed_at(&self) -> Option<u32> {
        self.informed_at
    }
}

impl Process for FloodingProcess {
    type Msg = bool;

    fn send(&mut self, _ctx: &SendContext) -> bool {
        self.is_informed()
    }

    fn receive(&mut self, ctx: RecvContext<'_, bool>) {
        if !self.is_informed() && ctx.inbox.iter().any(|&m| m) {
            self.informed_at = Some(ctx.round);
        }
    }
}

/// Runs a flood from `src` on `net` and returns the round in which the last
/// node was informed (`Some(0)` means one round sufficed), or `None` if the
/// flood did not complete within `max_rounds`.
///
/// The flood duration in the paper's counting (`D` witnesses) is
/// `completion_round + 1` when starting at round 0.
pub fn flood_completion_round<N: DynamicNetwork>(
    net: N,
    src: usize,
    max_rounds: u32,
) -> Option<u32> {
    let n = net.order();
    let mut sim = Simulator::new(net);
    let mut procs = FloodingProcess::population_from(n, src);
    sim.run(&mut procs, max_rounds);
    if !procs.iter().all(FloodingProcess::is_informed) {
        return None;
    }
    procs
        .iter()
        .filter_map(FloodingProcess::informed_at)
        .max()
        .or(Some(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::{metrics, pd, Graph, GraphSequence};

    #[test]
    fn flood_on_star_from_leaf() {
        let net = GraphSequence::constant(Graph::star(5).unwrap());
        let done = flood_completion_round(net, 1, 10).unwrap();
        // Leaf -> center round 0, center -> leaves round 1.
        assert_eq!(done, 1);
    }

    #[test]
    fn flood_on_path() {
        let net = GraphSequence::constant(Graph::path(6).unwrap());
        assert_eq!(flood_completion_round(net, 0, 10), Some(4));
    }

    #[test]
    fn incomplete_flood() {
        let net = GraphSequence::constant(Graph::from_edges(3, [(0, 1)]).unwrap());
        assert_eq!(flood_completion_round(net, 0, 8), None);
    }

    #[test]
    fn agrees_with_graph_metrics_flood() {
        // The Process-based flood matches the graph-level reference
        // implementation on the paper's Figure 1 network.
        let (_, v0, v3) = pd::figure1_nodes();
        let reference = metrics::flood(&mut pd::figure1(), v0, 0, 16);
        let process_based = flood_completion_round(pd::figure1(), v0, 16).unwrap();
        assert_eq!(
            Some(process_based + 1),
            reference.duration(),
            "duration = completion round + 1"
        );
        assert_eq!(reference.received_round(v3), Some(3));
    }

    #[test]
    fn source_is_informed_without_receiving() {
        let p = FloodingProcess::population(3);
        assert!(p[0].is_informed());
        assert!(!p[1].is_informed());
        assert_eq!(p[0].informed_at(), None);
    }
}
