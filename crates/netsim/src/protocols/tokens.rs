//! All-to-all token dissemination.
//!
//! The related-work benchmark of §2: in `k`-token dissemination, tokens
//! start at arbitrary nodes and must reach every node. With IDs and
//! one-token-per-round bandwidth this is hard (Ω(n·k/log n) rounds,
//! Dutta et al.); in the paper's model — anonymous but with *unlimited
//! bandwidth* — it is solved by trivial flooding in `O(D)` rounds, which
//! is exactly why counting's extra `Ω(log n)` is attributable to
//! anonymity rather than dissemination.
//!
//! Tokens are plain data (inputs), so carrying them does not break
//! anonymity.

use crate::process::{Process, RecvContext, SendContext};
use crate::runner::Simulator;
use anonet_graph::DynamicNetwork;
use std::collections::BTreeSet;

/// A process accumulating tokens and broadcasting everything it knows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenProcess {
    known: BTreeSet<u64>,
    complete_at: Option<u32>,
    universe: usize,
}

impl TokenProcess {
    /// A population where node `v` starts with the tokens
    /// `assignment[v]`; every node knows the total token count (used only
    /// to *observe* completion, as the paper's dissemination definition
    /// does — nodes cannot detect it themselves without counting).
    pub fn population(assignment: &[Vec<u64>]) -> Vec<TokenProcess> {
        let universe: BTreeSet<u64> = assignment.iter().flatten().copied().collect();
        assignment
            .iter()
            .map(|tokens| {
                let known: BTreeSet<u64> = tokens.iter().copied().collect();
                TokenProcess {
                    complete_at: (known.len() == universe.len()).then_some(0),
                    known,
                    universe: universe.len(),
                }
            })
            .collect()
    }

    /// One distinct token per node (the `k = n` all-to-all case).
    pub fn population_one_each(n: usize) -> Vec<TokenProcess> {
        let assignment: Vec<Vec<u64>> = (0..n).map(|v| vec![v as u64]).collect();
        TokenProcess::population(&assignment)
    }

    /// The tokens this node knows.
    pub fn known(&self) -> &BTreeSet<u64> {
        &self.known
    }

    /// Whether this node holds every token.
    pub fn is_complete(&self) -> bool {
        self.known.len() == self.universe
    }

    /// The round at which this node first held every token.
    pub fn complete_at(&self) -> Option<u32> {
        self.complete_at
    }
}

impl Process for TokenProcess {
    type Msg = BTreeSet<u64>;

    fn send(&mut self, _ctx: &SendContext) -> BTreeSet<u64> {
        self.known.clone()
    }

    fn receive(&mut self, ctx: RecvContext<'_, BTreeSet<u64>>) {
        for set in ctx.inbox {
            self.known.extend(set.iter().copied());
        }
        if self.complete_at.is_none() && self.is_complete() {
            self.complete_at = Some(ctx.round);
        }
    }
}

/// Runs all-to-all token dissemination (one token per node) on `net` and
/// returns the round in which the last node completed, or `None` within
/// `max_rounds`.
pub fn disseminate_all<N: DynamicNetwork>(net: N, max_rounds: u32) -> Option<u32> {
    let n = net.order();
    let mut sim = Simulator::new(net);
    let mut procs = TokenProcess::population_one_each(n);
    sim.run(&mut procs, max_rounds);
    if !procs.iter().all(TokenProcess::is_complete) {
        return None;
    }
    procs
        .iter()
        .filter_map(TokenProcess::complete_at)
        .max()
        .or(Some(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::{metrics, Graph, GraphSequence};

    #[test]
    fn all_to_all_on_star() {
        // Star: leaves' tokens reach the hub in round 0, everyone by 1.
        let net = GraphSequence::constant(Graph::star(6).unwrap());
        assert_eq!(disseminate_all(net, 10), Some(1));
    }

    #[test]
    fn all_to_all_on_path_takes_diameter() {
        let net = GraphSequence::constant(Graph::path(5).unwrap());
        // Endpoint tokens need 4 hops: last completion at round 3.
        assert_eq!(disseminate_all(net, 10), Some(3));
    }

    #[test]
    fn completes_within_dynamic_diameter() {
        // On any connected dynamic graph, all-to-all dissemination
        // completes within D rounds of flooding (§2's trivial algorithm).
        let mut fig1 = anonet_graph::pd::figure1();
        let d = metrics::dynamic_diameter(&mut fig1, 4, 16).unwrap();
        let done = disseminate_all(anonet_graph::pd::figure1(), 16).unwrap();
        assert!(done < d, "completion {done} within D = {d}");
    }

    #[test]
    fn custom_assignment() {
        // Tokens concentrated at one endpoint of a path.
        let assignment = vec![vec![1, 2, 3], vec![], vec![]];
        let mut procs = TokenProcess::population(&assignment);
        let net = GraphSequence::constant(Graph::path(3).unwrap());
        let mut sim = Simulator::new(net);
        sim.run(&mut procs, 5);
        assert!(procs.iter().all(TokenProcess::is_complete));
        assert_eq!(procs[2].complete_at(), Some(1));
        assert_eq!(procs[0].complete_at(), Some(0), "source starts complete");
        assert_eq!(procs[0].known().len(), 3);
    }

    #[test]
    fn incomplete_on_disconnected() {
        let net = GraphSequence::constant(Graph::from_edges(3, [(0, 1)]).unwrap());
        assert_eq!(disseminate_all(net, 8), None);
    }

    #[test]
    fn single_node_trivially_complete() {
        let net = GraphSequence::constant(Graph::empty(1));
        assert_eq!(disseminate_all(net, 2), Some(0));
    }
}
