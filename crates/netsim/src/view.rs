//! Hash-consed full-information views.
//!
//! The canonical deterministic algorithm on an anonymous network is the
//! *full-information protocol*: every round, every node broadcasts its
//! entire knowledge. A node's knowledge after `r` rounds is its *view*: its
//! initial state plus, for each past round, the **multiset** of neighbour
//! views it received (a multiset because anonymous senders are
//! interchangeable). Whatever any algorithm can output at round `r` is a
//! function of the view — so two executions giving the leader equal views
//! are indistinguishable to *every* algorithm. This is the tool we use to
//! verify the paper's indistinguishability constructions (Lemma 1,
//! Figures 3–4) at the network level.
//!
//! Views grow exponentially if materialized; [`ViewInterner`] hash-conses
//! them so equal subtrees share one id and equality is `O(1)`.

use crate::process::Role;
use anonet_graph::DynamicNetwork;
use std::collections::HashMap;

/// Identifier of an interned view. Equal ids ⇔ structurally equal views
/// (within one [`ViewInterner`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewId(u32);

impl ViewId {
    /// The raw index (for diagnostics).
    pub fn index(&self) -> u32 {
        self.0
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ViewNode {
    /// Initial knowledge: just the role.
    Leaf(Role),
    /// One synchronous step: previous own view + received multiset
    /// (sorted `(view, multiplicity)` pairs).
    Step {
        own: ViewId,
        received: Vec<(ViewId, u32)>,
    },
}

/// A hash-consing store for full-information views.
///
/// # Examples
///
/// ```
/// use anonet_netsim::{Role, ViewInterner};
///
/// let mut interner = ViewInterner::new();
/// let a = interner.leaf(Role::Anonymous);
/// let b = interner.leaf(Role::Anonymous);
/// assert_eq!(a, b); // anonymous nodes are indistinguishable at round 0
/// let l = interner.leaf(Role::Leader);
/// assert_ne!(a, l);
/// ```
#[derive(Debug, Default)]
pub struct ViewInterner {
    nodes: Vec<ViewNode>,
    index: HashMap<ViewNode, ViewId>,
}

impl ViewInterner {
    /// Creates an empty interner.
    pub fn new() -> ViewInterner {
        ViewInterner::default()
    }

    fn intern(&mut self, node: ViewNode) -> ViewId {
        if let Some(&id) = self.index.get(&node) {
            return id;
        }
        let id = ViewId(u32::try_from(self.nodes.len()).expect("view store exhausted"));
        self.nodes.push(node.clone());
        self.index.insert(node, id);
        id
    }

    /// The round-0 view of a node with the given role.
    pub fn leaf(&mut self, role: Role) -> ViewId {
        self.intern(ViewNode::Leaf(role))
    }

    /// One synchronous step: the view of a node that held `own` and
    /// received the multiset `received` (any order; multiplicity matters,
    /// order does not).
    pub fn step(&mut self, own: ViewId, received: impl IntoIterator<Item = ViewId>) -> ViewId {
        let mut items: Vec<ViewId> = received.into_iter().collect();
        items.sort_unstable();
        let mut packed: Vec<(ViewId, u32)> = Vec::new();
        for v in items {
            match packed.last_mut() {
                Some((id, count)) if *id == v => *count += 1,
                _ => packed.push((v, 1)),
            }
        }
        self.intern(ViewNode::Step {
            own,
            received: packed,
        })
    }

    /// Number of distinct interned views.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no views are interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The round depth of a view (0 for leaves).
    pub fn depth(&self, id: ViewId) -> u32 {
        match &self.nodes[id.0 as usize] {
            ViewNode::Leaf(_) => 0,
            ViewNode::Step { own, .. } => 1 + self.depth(*own),
        }
    }

    /// Resolves a view id into its structure — the read side of the
    /// interner, used by algorithms that *decode* views (e.g. the
    /// `G(PD)_2` view-counting leader).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: ViewId) -> ViewRef<'_> {
        match &self.nodes[id.0 as usize] {
            ViewNode::Leaf(role) => ViewRef::Leaf(*role),
            ViewNode::Step { own, received } => ViewRef::Step {
                own: *own,
                received,
            },
        }
    }
}

/// A borrowed, resolved view (see [`ViewInterner::resolve`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewRef<'a> {
    /// Initial knowledge: the node's role.
    Leaf(Role),
    /// One synchronous step.
    Step {
        /// The node's previous view.
        own: ViewId,
        /// The received multiset as sorted `(view, multiplicity)` pairs.
        received: &'a [(ViewId, u32)],
    },
}

impl ViewRef<'_> {
    /// The previous own view, if this is a step.
    pub fn own(&self) -> Option<ViewId> {
        match self {
            ViewRef::Leaf(_) => None,
            ViewRef::Step { own, .. } => Some(*own),
        }
    }

    /// Total multiplicity of the received multiset (0 for leaves).
    pub fn received_count(&self) -> u32 {
        match self {
            ViewRef::Leaf(_) => 0,
            ViewRef::Step { received, .. } => received.iter().map(|&(_, c)| c).sum(),
        }
    }

    /// Multiplicity of `id` in the received multiset.
    pub fn multiplicity(&self, id: ViewId) -> u32 {
        match self {
            ViewRef::Leaf(_) => 0,
            ViewRef::Step { received, .. } => received
                .binary_search_by_key(&id, |&(v, _)| v)
                .map(|i| received[i].1)
                .unwrap_or(0),
        }
    }
}

/// The per-round views of every node in a full-information execution.
#[derive(Debug, Clone)]
pub struct FullInfoRun {
    /// `views[r][v]` is node `v`'s view after `r` rounds (`views[0]` are
    /// the initial leaves).
    pub views: Vec<Vec<ViewId>>,
}

impl FullInfoRun {
    /// The leader's view after `r` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `r` exceeds the executed rounds.
    pub fn leader_view(&self, r: usize) -> ViewId {
        self.views[r][0]
    }

    /// Number of executed rounds.
    pub fn rounds(&self) -> usize {
        self.views.len() - 1
    }

    /// The largest `T ≤ max` such that the leaders of `self` and `other`
    /// have equal views after every round `0..=T` — both runs must come
    /// from the same interner for ids to be comparable.
    pub fn leader_agreement(&self, other: &FullInfoRun, max: usize) -> usize {
        let lim = max.min(self.rounds()).min(other.rounds());
        let mut t = 0;
        for r in 1..=lim {
            if self.leader_view(r) == other.leader_view(r) {
                t = r;
            } else {
                break;
            }
        }
        t
    }
}

/// Executes the full-information protocol on `net` for `rounds` rounds.
///
/// Node 0 is the leader; all other nodes start with identical anonymous
/// leaves. Views are interned in `interner`, so runs sharing an interner
/// have directly comparable [`ViewId`]s.
pub fn run_full_information(
    net: &mut dyn DynamicNetwork,
    rounds: u32,
    interner: &mut ViewInterner,
) -> FullInfoRun {
    let n = net.order();
    let leader = interner.leaf(Role::Leader);
    let anon = interner.leaf(Role::Anonymous);
    let mut current: Vec<ViewId> = (0..n).map(|v| if v == 0 { leader } else { anon }).collect();
    let mut views = vec![current.clone()];
    for round in 0..rounds {
        let g = net.graph(round);
        debug_assert_eq!(g.order(), n);
        let next: Vec<ViewId> = (0..n)
            .map(|v| {
                let received = g.neighbors(v).iter().map(|&u| current[u]);
                interner.step(current[v], received)
            })
            .collect();
        views.push(next.clone());
        current = next;
    }
    FullInfoRun { views }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::{Graph, GraphSequence};

    #[test]
    fn interning_dedups() {
        let mut i = ViewInterner::new();
        let a = i.leaf(Role::Anonymous);
        let l = i.leaf(Role::Leader);
        let s1 = i.step(a, [l, a, a]);
        let s2 = i.step(a, [a, l, a]); // order must not matter
        assert_eq!(s1, s2);
        let s3 = i.step(a, [l, a]); // multiplicity must matter
        assert_ne!(s1, s3);
        assert_eq!(i.len(), 4);
        assert!(!i.is_empty());
    }

    #[test]
    fn depth_tracks_rounds() {
        let mut i = ViewInterner::new();
        let a = i.leaf(Role::Anonymous);
        assert_eq!(i.depth(a), 0);
        let s = i.step(a, [a]);
        let s2 = i.step(s, [s, s]);
        assert_eq!(i.depth(s), 1);
        assert_eq!(i.depth(s2), 2);
    }

    #[test]
    fn symmetric_star_leaves_share_views() {
        let mut i = ViewInterner::new();
        let mut net = GraphSequence::constant(Graph::star(5).unwrap());
        let run = run_full_information(&mut net, 3, &mut i);
        // All leaves are symmetric: identical views every round.
        for r in 0..=3 {
            let leaf_views: Vec<ViewId> = (1..5).map(|v| run.views[r][v]).collect();
            assert!(leaf_views.windows(2).all(|w| w[0] == w[1]), "round {r}");
        }
        // The leader's view differs from the leaves'.
        assert_ne!(run.views[1][0], run.views[1][1]);
    }

    #[test]
    fn star_sizes_distinguishable_by_leader_after_one_round() {
        // In G(PD)_1 (a star) the leader learns the size immediately: its
        // round-1 view encodes the number of received messages.
        let mut i = ViewInterner::new();
        let mut small = GraphSequence::constant(Graph::star(4).unwrap());
        let mut large = GraphSequence::constant(Graph::star(5).unwrap());
        let rs = run_full_information(&mut small, 2, &mut i);
        let rl = run_full_information(&mut large, 2, &mut i);
        assert_ne!(rs.leader_view(1), rl.leader_view(1));
        assert_eq!(rs.leader_agreement(&rl, 2), 0);
    }

    #[test]
    fn identical_networks_identical_views() {
        let mut i = ViewInterner::new();
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let mut a = GraphSequence::constant(g.clone());
        let mut b = GraphSequence::constant(g);
        let ra = run_full_information(&mut a, 4, &mut i);
        let rb = run_full_information(&mut b, 4, &mut i);
        assert_eq!(ra.leader_agreement(&rb, 4), 4);
        for r in 0..=4 {
            assert_eq!(ra.views[r], rb.views[r]);
        }
    }

    #[test]
    fn view_growth_is_bounded_by_hash_consing() {
        // A symmetric network generates very few distinct views even over
        // many rounds.
        let mut i = ViewInterner::new();
        let mut net = GraphSequence::constant(Graph::complete(6));
        let run = run_full_information(&mut net, 20, &mut i);
        assert_eq!(run.rounds(), 20);
        // leader leaf + anon leaf + 2 per round (leader/anon views).
        assert!(i.len() <= 2 + 2 * 20, "interner size {}", i.len());
    }
}
