#!/usr/bin/env bash
# Full local check: build, tests, docs, lints, and the determinism
# guarantee of the parallel experiment runner.
#
# Usage: ./scripts/check.sh [--fast]
#   --fast  skip the release-build determinism comparison
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo doc --no-deps (missing_docs must be clean)"
doc_log=$(cargo doc --no-deps 2>&1) || { echo "$doc_log"; exit 1; }
if grep -q "warning" <<<"$doc_log"; then
    echo "$doc_log"
    echo "error: rustdoc produced warnings" >&2
    exit 1
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "==> fixed-seed incremental-vs-batch + mod-p proptests"
cargo test -p anonet-linalg --test proptests --quiet

echo "==> cargo bench --no-run (criterion groups must compile)"
cargo bench --workspace --no-run --quiet

if [[ $fast -eq 0 ]]; then
    echo "==> BENCH schema smokes (exp_linalg_scaling / exp_modp_scaling --smoke)"
    cargo build --release -p anonet-bench --quiet
    target/release/exp_linalg_scaling --smoke >/dev/null
    target/release/exp_modp_scaling --smoke >/dev/null

    echo "==> mod-p elimination determinism: exp_modp_scaling --smoke, 1 vs 4 threads"
    # The smoke fast cell re-proves in-process that the fused append and
    # the chunk-claiming batch eliminator are byte-identical to the
    # scalar path; the cmp additionally pins the timing-stripped
    # document (rank + echelon digest) across thread counts.
    mbin=target/release/exp_modp_scaling
    mserial=$(mktemp) mparallel=$(mktemp)
    "$mbin" --smoke --threads 1 --json --no-timings >"$mserial"
    "$mbin" --smoke --threads 4 --json --no-timings >"$mparallel"
    if ! cmp -s "$mserial" "$mparallel"; then
        echo "error: exp_modp_scaling output differs between 1 and 4 threads" >&2
        diff "$mserial" "$mparallel" | head -20 >&2
        rm -f "$mserial" "$mparallel"
        exit 1
    fi
    rm -f "$mserial" "$mparallel"

    echo "==> committed BENCH_modp.json gates (exp_modp_scaling --lint-bench: speedup floors, fast n >= 10^5)"
    "$mbin" --lint-bench BENCH_modp.json >/dev/null
fi

if [[ $fast -eq 0 ]]; then
    echo "==> SoA round-engine determinism: exp_scale --smoke (one n=10^5 execution), 1 vs 4 threads"
    cargo build --release -p anonet-bench --quiet
    # Each run re-proves in-process that the threaded engine is
    # byte-identical to the serial one and that the leader decides the
    # exact count at horizon + 2; the cmp additionally pins the
    # timing-stripped document across thread counts.
    sbin=target/release/exp_scale
    sserial=$(mktemp) sparallel=$(mktemp)
    "$sbin" --smoke --threads 1 --json --no-timings >"$sserial"
    "$sbin" --smoke --threads 4 --json --no-timings >"$sparallel"
    if ! cmp -s "$sserial" "$sparallel"; then
        echo "error: exp_scale output differs between 1 and 4 threads" >&2
        diff "$sserial" "$sparallel" | head -20 >&2
        rm -f "$sserial" "$sparallel"
        exit 1
    fi
    rm -f "$sserial" "$sparallel"

    echo "==> committed BENCH_scale.json gates (exp_scale --lint-bench: speedup floor, n >= 10^5)"
    "$sbin" --lint-bench BENCH_scale.json >/dev/null
fi

if [[ $fast -eq 0 ]]; then
    echo "==> algorithm crossover grid: exp_crossover --smoke (kernel vs history-tree vs oracle)"
    cargo build --release -p anonet-bench --quiet
    # Each run re-proves in-process that the history-tree arm decides
    # the exact count at horizon + 2 on both the clean and the faulted
    # cell while the faulted kernel arm does not; the cmp additionally
    # pins the timing-stripped document across thread counts (every
    # deterministic column is serial, so the flag must be inert).
    cbin=target/release/exp_crossover
    "$cbin" --smoke >/dev/null
    cserial=$(mktemp) cparallel=$(mktemp)
    "$cbin" --smoke --threads 1 --json --no-timings >"$cserial"
    "$cbin" --smoke --threads 4 --json --no-timings >"$cparallel"
    if ! cmp -s "$cserial" "$cparallel"; then
        echo "error: exp_crossover output differs between 1 and 4 threads" >&2
        diff "$cserial" "$cparallel" | head -20 >&2
        rm -f "$cserial" "$cparallel"
        exit 1
    fi
    rm -f "$cserial" "$cparallel"

    echo "==> committed BENCH_crossover.json gates (exp_crossover --lint-bench: crossover cell, n >= 29524)"
    "$cbin" --lint-bench BENCH_crossover.json >/dev/null
fi

echo "==> strict missing-docs on the simulation core (anonet-multigraph, anonet-netsim)"
cargo rustc -p anonet-multigraph --lib --quiet -- -D missing-docs
cargo rustc -p anonet-netsim --lib --quiet -- -D missing-docs

if [[ $fast -eq 0 ]]; then
    echo "==> fault-injection safety gate (exp_faults --smoke: zero silent-wrong with watchdogs on)"
    cargo build --release -p anonet-bench --quiet
    # The smoke corpus asserts in-process that no guarded run reports a
    # wrong count; an escape panics the cell and exits non-zero.
    target/release/exp_faults --smoke >/dev/null

    echo "==> fault-injection determinism: exp_faults --smoke, 1 vs 4 threads"
    fbin=target/release/exp_faults
    fserial=$(mktemp) fparallel=$(mktemp)
    "$fbin" --smoke --threads 1 --json --no-timings >"$fserial"
    "$fbin" --smoke --threads 4 --json --no-timings >"$fparallel"
    if ! cmp -s "$fserial" "$fparallel"; then
        echo "error: exp_faults output differs between 1 and 4 threads" >&2
        diff "$fserial" "$fparallel" | head -20 >&2
        rm -f "$fserial" "$fparallel"
        exit 1
    fi
    rm -f "$fserial" "$fparallel"
fi

if [[ $fast -eq 0 ]]; then
    echo "==> socketed runtime gate (exp_net --smoke: loopback TCP vs in-memory oracle)"
    cargo build --release -p anonet-bench --quiet
    # Every cell spawns a real loopback cluster (>= 8 peer threads plus
    # fault proxies) and asserts in-process that the socketed verdict
    # equals the in-memory oracle's for every fault-plan family, that
    # drop/duplicate plans really rewrite frames on the wire, that the
    # archived E22a silent-wrong schedules cannot extract a wrong count
    # over TCP, and that a hung peer surfaces as a typed RoundTimeout
    # inside its deadline budget. The hard timeout is the meta-watchdog:
    # a wedged barrier fails the check instead of hanging CI.
    timeout 300 target/release/exp_net --smoke >/dev/null
fi

if [[ $fast -eq 0 ]]; then
    echo "==> adversary-search gate (exp_search --smoke: every archive replays its verdict)"
    cargo build --release -p anonet-bench --quiet
    # Bounded iteration budget (24 mutants/campaign); each run replays
    # every archived schedule through the verdict oracle in-process.
    target/release/exp_search --smoke >/dev/null

    echo "==> adversary-search determinism: exp_search --smoke, 1 vs 4 threads"
    xbin=target/release/exp_search
    xserial=$(mktemp) xparallel=$(mktemp)
    "$xbin" --smoke --threads 1 --json >"$xserial"
    "$xbin" --smoke --threads 4 --json >"$xparallel"
    if ! cmp -s "$xserial" "$xparallel"; then
        echo "error: exp_search output differs between 1 and 4 threads" >&2
        diff "$xserial" "$xparallel" | head -20 >&2
        rm -f "$xserial" "$xparallel"
        exit 1
    fi
    rm -f "$xserial" "$xparallel"

    echo "==> adversary-search crash safety: inject-panic -> lint -> resume -> byte-compare"
    xdir=$(mktemp -d)
    xckpt="$xdir/search.checkpoint.jsonl"
    "$xbin" --smoke --threads 4 --json >"$xdir/ref.json"
    if "$xbin" --smoke --threads 4 --json \
        --checkpoint "$xckpt" --inject-panic 2 >/dev/null 2>"$xdir/panic.log"; then
        echo "error: exp_search with --inject-panic 2 exited zero" >&2
        rm -rf "$xdir"
        exit 1
    fi
    "$xbin" --lint-checkpoint "$xckpt" >/dev/null
    "$xbin" --smoke --threads 4 --json \
        --checkpoint "$xckpt" --resume >"$xdir/resumed.json" 2>/dev/null
    if ! cmp -s "$xdir/ref.json" "$xdir/resumed.json"; then
        echo "error: resumed exp_search --json differs from an uninterrupted run" >&2
        diff "$xdir/ref.json" "$xdir/resumed.json" | head -20 >&2
        rm -rf "$xdir"
        exit 1
    fi
    rm -rf "$xdir"
fi

if [[ $fast -eq 0 ]]; then
    echo "==> parallel determinism: exp_all --quick, 1 vs 4 threads"
    cargo build --release -p anonet-bench --quiet
    bin=target/release/exp_all
    serial=$(mktemp) parallel=$(mktemp)
    trap 'rm -f "$serial" "$parallel"' EXIT
    "$bin" --quick --threads 1 >"$serial"
    "$bin" --quick --threads 4 >"$parallel"
    if ! cmp -s "$serial" "$parallel"; then
        echo "error: exp_all output differs between 1 and 4 threads" >&2
        diff "$serial" "$parallel" | head -20 >&2
        exit 1
    fi
fi

if [[ $fast -eq 0 ]]; then
    echo "==> crash safety: inject-panic -> lint -> resume -> byte-compare (exp_all --quick)"
    cargo build --release -p anonet-bench --quiet
    bin=target/release/exp_all
    crashdir=$(mktemp -d)
    trap 'rm -f "$serial" "$parallel"; rm -rf "$crashdir"' EXIT
    ckpt="$crashdir/grid.checkpoint.jsonl"
    "$bin" --quick --threads 4 --json --no-timings >"$crashdir/ref.json"
    # Cell 2 panics; the run must fail, journal the surviving cells, and
    # leave a journal that lints clean (fsync-per-line: no torn lines).
    if "$bin" --quick --threads 4 --json --no-timings \
        --checkpoint "$ckpt" --inject-panic 2 >/dev/null 2>"$crashdir/panic.log"; then
        echo "error: exp_all with --inject-panic 2 exited zero" >&2
        exit 1
    fi
    "$bin" --lint-checkpoint "$ckpt" >/dev/null
    "$bin" --quick --threads 4 --json --no-timings \
        --checkpoint "$ckpt" --resume >"$crashdir/resumed.json" 2>/dev/null
    if ! cmp -s "$crashdir/ref.json" "$crashdir/resumed.json"; then
        echo "error: resumed exp_all --json differs from an uninterrupted run" >&2
        diff "$crashdir/ref.json" "$crashdir/resumed.json" | head -20 >&2
        exit 1
    fi

    echo "==> crash safety: SIGKILL mid-grid leaves no truncated checkpoint line"
    killckpt="$crashdir/killed.checkpoint.jsonl"
    "$bin" --threads 1 --checkpoint "$killckpt" >/dev/null 2>&1 &
    victim=$!
    # Wait for at least one journaled cell, then kill -9 mid-grid.
    for _ in $(seq 1 200); do
        [[ -s "$killckpt" ]] && break
        sleep 0.05
    done
    if [[ ! -s "$killckpt" ]]; then
        echo "error: no checkpoint line appeared before the kill window closed" >&2
        kill -9 "$victim" 2>/dev/null || true
        exit 1
    fi
    kill -9 "$victim" 2>/dev/null || true
    wait "$victim" 2>/dev/null || true
    "$bin" --lint-checkpoint "$killckpt" >/dev/null
fi

echo "All checks passed."
