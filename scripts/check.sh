#!/usr/bin/env bash
# Full local check: build, tests, docs, lints, and the determinism
# guarantee of the parallel experiment runner.
#
# Usage: ./scripts/check.sh [--fast]
#   --fast  skip the release-build determinism comparison
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo doc --no-deps (missing_docs must be clean)"
doc_log=$(cargo doc --no-deps 2>&1) || { echo "$doc_log"; exit 1; }
if grep -q "warning" <<<"$doc_log"; then
    echo "$doc_log"
    echo "error: rustdoc produced warnings" >&2
    exit 1
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "==> fixed-seed incremental-vs-batch + mod-p proptests"
cargo test -p anonet-linalg --test proptests --quiet

echo "==> cargo bench --no-run (criterion groups must compile)"
cargo bench --workspace --no-run --quiet

if [[ $fast -eq 0 ]]; then
    echo "==> BENCH schema smokes (exp_linalg_scaling / exp_modp_scaling --smoke)"
    cargo build --release -p anonet-bench --quiet
    target/release/exp_linalg_scaling --smoke >/dev/null
    target/release/exp_modp_scaling --smoke >/dev/null
fi

if [[ $fast -eq 0 ]]; then
    echo "==> parallel determinism: exp_all --quick, 1 vs 4 threads"
    cargo build --release -p anonet-bench --quiet
    bin=target/release/exp_all
    serial=$(mktemp) parallel=$(mktemp)
    trap 'rm -f "$serial" "$parallel"' EXIT
    "$bin" --quick --threads 1 >"$serial"
    "$bin" --quick --threads 4 >"$parallel"
    if ! cmp -s "$serial" "$parallel"; then
        echo "error: exp_all output differs between 1 and 4 threads" >&2
        diff "$serial" "$parallel" | head -20 >&2
        exit 1
    fi
fi

echo "All checks passed."
