//! The dissemination/counting gap (§5): flooding completes in `D` rounds
//! while counting takes `D + Ω(log |V|)` — on the very same networks.
//!
//! Run with: `cargo run --release --example dissemination_gap`

use anonet::core::cost::measure_gap;
use anonet::core::experiment::Table;
use anonet::graph::{metrics, pd};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // First, the paper's Figure 1 network: D = 4 measured by flooding.
    let mut fig1 = pd::figure1();
    let d = metrics::dynamic_diameter(&mut fig1, 4, 16).expect("figure 1 floods complete");
    println!("Figure 1 network: measured dynamic diameter D = {d}\n");

    // Then the gap on worst-case instances of growing size.
    let mut table = Table::new(
        "gap",
        "flooding vs counting on the same worst-case G(PD)_2 instances",
        &["|V|", "flood rounds", "counting rounds", "anonymity gap"],
    );
    for &n in &[4u64, 13, 40, 121, 364, 1093, 3280] {
        let g = measure_gap(n)?;
        table.push_row(vec![
            g.order.to_string(),
            g.dissemination_rounds.to_string(),
            g.counting_rounds.to_string(),
            (g.counting_rounds - g.dissemination_rounds).to_string(),
        ]);
    }
    println!("{table}");
    println!("the flood column is flat; the counting column climbs with log |V|.");
    Ok(())
}
