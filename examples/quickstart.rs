//! Quickstart: count an anonymous dynamic network under the worst-case
//! adversary and compare against the paper's bound.
//!
//! Run with: `cargo run --example quickstart [n]`

use anonet::core::algorithms::KernelCounting;
use anonet::core::bounds;
use anonet::multigraph::adversary::TwinBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(40);

    // 1. The worst-case adversary builds a dynamic multigraph of size n
    //    (and a twin of size n+1 that looks identical for as long as
    //    possible).
    let pair = TwinBuilder::new().build(n)?;
    println!(
        "adversary: twins of sizes {} and {} are leader-indistinguishable \
         through round {}",
        pair.smaller.nodes(),
        pair.larger.nodes(),
        pair.horizon
    );

    // 2. The optimal leader algorithm counts by solving the observation
    //    system m_r = M_r s_r each round and deciding once the
    //    non-negative solution is unique.
    let (outcome, trace) = KernelCounting::new().run_traced(&pair.smaller, 64)?;
    println!("\nleader's candidate population range per round:");
    for (r, (lo, hi)) in trace.candidate_ranges.iter().enumerate() {
        println!("  after round {r}: [{lo}, {hi}]");
    }
    println!(
        "\ncounted |W| = {} after {} rounds",
        outcome.count, outcome.rounds
    );

    // 3. The paper's Theorem 1 bound — matched exactly.
    let bound = bounds::counting_rounds_lower_bound(n);
    println!("paper lower bound: ⌊log₃(2·{n}+1)⌋ + 1 = {bound} rounds");
    assert_eq!(outcome.rounds, bound, "the algorithm is tight");
    println!("=> the cost of anonymity for n = {n} is exactly {bound} rounds");
    Ok(())
}
