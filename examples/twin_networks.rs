//! Twin networks: the constructive Lemma 5 / Figures 3–4.
//!
//! Builds the size-`n` and size-`n+1` twins, shows their censuses, checks
//! leader-state agreement round by round, then transforms both into
//! anonymous `G(PD)_2` graphs (Lemma 1) and verifies that even the
//! full-information protocol cannot separate them earlier.
//!
//! Run with: `cargo run --example twin_networks [n]`

use anonet::graph::{ChainExtended, DynamicNetwork};
use anonet::multigraph::adversary::TwinBuilder;
use anonet::multigraph::{transform, Census, LeaderState};
use anonet::netsim::{run_full_information, ViewInterner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(4);

    let pair = TwinBuilder::new().build(n)?;
    let depth = pair.horizon as usize + 1;
    println!(
        "twins for n = {n} (ambiguity horizon: round {})",
        pair.horizon
    );
    println!("\nM ({} nodes):", pair.smaller.nodes());
    print!(
        "{}",
        anonet::multigraph::render::census_histogram(&Census::of_multigraph(&pair.smaller, depth))
    );
    println!("\nM' ({} nodes):", pair.larger.nodes());
    print!(
        "{}",
        anonet::multigraph::render::census_histogram(&Census::of_multigraph(&pair.larger, depth))
    );

    // Multigraph level: leader states agree exactly through the horizon.
    println!("\nmultigraph leader states (Definition 7):");
    for rounds in 1..=depth + 1 {
        let eq = LeaderState::observe(&pair.smaller, rounds)
            == LeaderState::observe(&pair.larger, rounds);
        println!(
            "  after round {}: {}",
            rounds - 1,
            if eq { "identical" } else { "DIFFERENT" }
        );
    }

    // Network level (Lemma 1): even full-information views on the
    // anonymous G(PD)_2 images agree through the horizon.
    let small = transform::to_pd2(&pair.smaller, depth + 1)?;
    let large = transform::to_pd2(&pair.larger, depth + 1)?;
    let mut small = ChainExtended::new(small, 0);
    let mut large = ChainExtended::new(large, 0);
    let mut interner = ViewInterner::new();
    let horizon = pair.horizon + 6;
    let a = run_full_information(&mut small, horizon, &mut interner);
    let b = run_full_information(&mut large, horizon, &mut interner);
    let agree = a.leader_agreement(&b, horizon as usize);
    println!(
        "\nG(PD)_2 full-information views: leaders agree through round {} \
         (sizes {} vs {})",
        agree,
        small.order(),
        large.order()
    );
    assert!(agree as u32 > pair.horizon, "Lemma 1 transfer");
    println!("=> no deterministic algorithm separates the twins before round {agree}");
    Ok(())
}
