//! Renders the paper's Figure 1 network: persistent-distance layers,
//! per-round Graphviz DOT output and the witnessing flood.
//!
//! Run with: `cargo run --example render_figure1 > fig1.dot`
//! Then: `dot -Tpng fig1.dot -o fig1.png` (splits into one graph per round).

use anonet::graph::{dot, metrics, pd};

fn main() {
    let mut net = pd::figure1();
    let (_, v0, v3) = pd::figure1_nodes();

    eprintln!("Figure 1: a G(PD)_2 network over three explicit rounds.");
    let dists = metrics::persistent_distances(&mut net, 6).expect("figure 1 is PD");
    eprintln!("persistent distances: {dists:?}");

    let flood = metrics::flood(&mut net, v0, 0, 16);
    eprintln!(
        "flood from v{v0} at round 0: v{v3} receives at round {:?}; D = {:?}",
        flood.received_round(v3),
        metrics::dynamic_diameter(&mut net, 4, 16)
    );

    // DOT for the three explicit rounds on stdout.
    print!("{}", dot::dynamic_to_dot(&mut net, "figure1", 3));
}
