//! The message-passing view of the optimal algorithm: raw `(label, state)`
//! deliveries stream into an online leader that narrows its candidate set
//! each round and outputs the moment the count is pinned.
//!
//! Run with: `cargo run --example online_leader [n]`

use anonet::multigraph::adversary::TwinBuilder;
use anonet::multigraph::simulate::{simulate, OnlineLeader};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(25);

    let pair = TwinBuilder::new().build(n)?;
    println!(
        "worst-case M(DBL)_2 execution, n = {n} (ambiguity horizon: round {})\n",
        pair.horizon
    );

    let exec = simulate(&pair.smaller, pair.horizon as usize + 4);
    let mut leader = OnlineLeader::new();
    for (r, round) in exec.rounds.iter().enumerate() {
        let decided = leader.ingest(&exec.arena, round)?;
        let (lo, hi) = leader.candidates().expect("real executions are feasible");
        let distinct = {
            // Canonical order: distinct (label, state) pairs are runs.
            let mut states: Vec<_> = round.iter().collect();
            states.dedup();
            states.len()
        };
        println!(
            "round {r}: {} deliveries ({distinct} distinct states) -> candidates [{lo}, {hi}]",
            round.len()
        );
        if let Some(count) = decided {
            println!("\nleader outputs |W| = {count} after {} rounds", r + 1);
            assert_eq!(count, n);
            return Ok(());
        }
    }
    unreachable!("the kernel algorithm decides within horizon + 2 rounds");
}
