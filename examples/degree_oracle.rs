//! The Discussion's point: a local degree detector collapses the
//! `Ω(log n)` anonymity cost to O(1) in restricted `G(PD)_2` networks.
//!
//! Run with: `cargo run --example degree_oracle [leaves]`

use anonet::core::algorithms::run_degree_oracle;
use anonet::core::cost::measure_counting_cost;
use anonet::graph::pd::{Pd2Layout, RandomPd2};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let leaves: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1000);

    let layout = Pd2Layout { relays: 3, leaves };
    println!(
        "random G(PD)_2: leader + {} relays + {} leaves = {} nodes",
        layout.relays,
        layout.leaves,
        layout.order()
    );

    // With the degree oracle: exact count in 3 rounds, whatever the size.
    let net = RandomPd2::new(layout, StdRng::seed_from_u64(42));
    let oracle = run_degree_oracle(net)?;
    println!(
        "degree-oracle protocol: counted |V| = {} in {} rounds",
        oracle.count, oracle.rounds
    );
    assert_eq!(oracle.count as usize, layout.order());

    // Without it: the broadcast-only optimum pays ⌊log₃(2n+1)⌋ + 1.
    let broadcast = measure_counting_cost(leaves as u64)?;
    println!(
        "broadcast-only optimum (worst case, n = {leaves}): {} rounds",
        broadcast.measured_rounds
    );
    println!(
        "=> one bit of pre-receive knowledge (the degree) saves {} rounds",
        broadcast.measured_rounds.saturating_sub(oracle.rounds)
    );
    Ok(())
}
