//! The headline curve: counting time vs network size under the worst-case
//! adversary (Theorem 2's `Ω(log |V|)`, matched tightly).
//!
//! Run with: `cargo run --release --example cost_of_anonymity`

use anonet::core::cost::measure_counting_cost;
use anonet::core::experiment::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut table = Table::new(
        "cost-of-anonymity",
        "optimal counting rounds vs n (worst-case adversary)",
        &["n", "measured rounds", "⌊log₃(2n+1)⌋+1", "tight"],
    );
    // Powers of 3 straddle the bound's jumps.
    let mut ns = vec![1u64, 2];
    let mut p = 3u64;
    while p <= 60_000 {
        ns.push(p);
        ns.push(p + 1);
        p *= 3;
    }
    for n in ns {
        let c = measure_counting_cost(n)?;
        table.push_row(vec![
            n.to_string(),
            c.measured_rounds.to_string(),
            c.bound_rounds.to_string(),
            (c.measured_rounds == c.bound_rounds).to_string(),
        ]);
    }
    println!("{table}");
    println!("dissemination on the same networks completes in at most 4 rounds;");
    println!("every extra round in the table is the price of anonymity.");
    Ok(())
}
