//! Hermetic stand-in for the `criterion` benchmark harness.
//!
//! Provides the API shape the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!` — with a trivial measurement loop: each benchmark
//! body runs a small fixed number of iterations and the mean wall-clock
//! time is printed. No statistics, no HTML reports, no comparisons; the
//! point is that `cargo bench` compiles, runs and produces indicative
//! numbers offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Number of timed iterations per benchmark (upstream runs adaptive
/// sampling; the stand-in keeps `cargo bench` fast and deterministic).
const ITERS: u32 = 3;

/// Prevents the optimizer from discarding a value. Mirrors
/// `std::hint::black_box`, which benches may import from either place.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id consisting of the parameter only.
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// Runs one benchmark body repeatedly and measures it.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / f64::from(ITERS);
    }
}

fn report(path: &str, bencher: &Bencher) {
    let us = bencher.nanos_per_iter / 1_000.0;
    println!("bench {path:<50} {us:>12.1} us/iter");
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(id, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for upstream compatibility; the stand-in's iteration
    /// count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    /// Runs a benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut calls = 0u32;
        Criterion.bench_function("demo", |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, ITERS);
    }

    #[test]
    fn group_apis_compose() {
        let mut c = Criterion;
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        let input = 5u32;
        g.bench_with_input(BenchmarkId::from_parameter(input), &input, |b, &i| {
            b.iter(|| i * 2)
        });
        g.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
