//! Hermetic stand-in for the `serde` crate (serialization only).
//!
//! Instead of upstream's visitor-based `Serializer` machinery, this stub
//! serializes through a single tree type, [`Value`]: [`Serialize`] turns
//! any supported type into a `Value`, and `serde_json` renders the
//! `Value`. This covers everything the workspace needs —
//! `#[derive(Serialize)]` on named-field structs plus
//! `serde_json::to_string{,_pretty}` — with no proc-macro dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A serialized value tree (the JSON data model). Object fields keep
/// declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (covers every primitive integer the repo uses).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map of field name to value.
    Object(Vec<(String, Value)>),
}

/// Conversion into a [`Value`] tree. The stand-in equivalent of upstream
/// serde's `Serialize`.
pub trait Serialize {
    /// Serializes `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}

impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(3u32.to_value(), Value::Int(3));
        assert_eq!((-7i64).to_value(), Value::Int(-7));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::Int(1), Value::Int(2)])
        );
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(Some(4u8).to_value(), Value::Int(4));
        assert_eq!(
            (1u8, "a".to_string()).to_value(),
            Value::Array(vec![Value::Int(1), Value::Str("a".into())])
        );
    }
}
