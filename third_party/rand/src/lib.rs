//! Hermetic stand-in for the `rand` crate.
//!
//! Implements exactly the API surface the workspace uses: a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer ranges,
//! and [`seq::SliceRandom::shuffle`]. The generated stream differs from
//! upstream `rand`; callers must only rely on per-seed determinism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random `u64`s. Object-safe; `Rng` is blanket-implemented
/// on top of it.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::{Rng, SeedableRng};
    ///
    /// let mut rng = StdRng::seed_from_u64(7);
    /// let x = rng.gen_range(0..10usize);
    /// assert!(x < 10);
    /// // The stream is deterministic per seed.
    /// assert_eq!(x, StdRng::seed_from_u64(7).gen_range(0..10usize));
    /// ```
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// An integer type samplable by [`gen_range`](Rng::gen_range). The
/// single generic [`SampleRange`] impl over this trait (rather than one
/// impl per concrete range type) is what lets inference unify the range
/// literal's integer type with the call site, exactly as upstream does.
pub trait SampleUniform: Copy + PartialOrd {
    /// Widens to `i128` (lossless for every implementor).
    fn to_i128(self) -> i128;
    /// Narrows from `i128` (caller guarantees the value is in range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can be sampled uniformly: `Range` and `RangeInclusive`
/// over any [`SampleUniform`] integer type.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end.to_i128() - self.start.to_i128()) as u128;
        let v = ((rng.next_u64() as u128) % span) as i128;
        T::from_i128(self.start.to_i128() + v)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let span = (hi.to_i128() - lo.to_i128()) as u128 + 1;
        let v = ((rng.next_u64() as u128) % span) as i128;
        T::from_i128(lo.to_i128() + v)
    }
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ with SplitMix64
    /// seed expansion. Not the upstream `StdRng` algorithm — only per-seed
    /// determinism is guaranteed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence utilities.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..16).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
        // Every value of a small range is hit.
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0..3usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..50).collect::<Vec<u32>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn works_through_mut_references() {
        // `RandomDblAdversary::new(&mut self.rng)` style forwarding.
        let mut rng = StdRng::seed_from_u64(5);
        fn takes_rng<R: super::RngCore>(mut r: R) -> u64 {
            r.gen_range(0..100u64)
        }
        let a = takes_rng(&mut rng);
        let b = takes_rng(&mut rng);
        let _ = (a, b);
    }
}
