//! Hermetic stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, integer-range,
//! tuple, [`Just`] and [`any`] strategies, [`collection::vec`],
//! [`bool::ANY`], `prop_oneof!`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case reports the panic message (every
//!   `prop_assert*` includes its values), not a minimized input;
//! * **deterministic seeding** — each test's RNG is seeded from a hash of
//!   its module path and name, so failures reproduce run-to-run;
//! * **`prop_assume!` skips** the sample instead of re-drawing, so the
//!   effective case count can be lower than configured;
//! * the default case count is 64 (upstream: 256) to keep offline CI fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Re-export for use by the `proptest!` macro expansion.
#[doc(hidden)]
pub use ::rand;

pub mod strategy;

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Number-of-elements specification for [`vec`]: an exact size or a
    /// half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// A strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors whose length is drawn from `size`
    /// and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies over `bool`.
pub mod bool {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// Uniformly random booleans.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_range(0..2u32) == 1
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Configuration accepted by `proptest! { #![proptest_config(...)] }`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// Deterministic 64-bit FNV-1a hash of a test's identifier, used as
    /// its RNG seed so property tests reproduce across runs.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// The glob-import module mirrored from upstream.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs its body over `cases` random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body $cfg; $($rest)*);
    };
    (@body $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let __seed = $crate::test_runner::seed_for(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __rng =
                    <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(__seed);
                for _ in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    // Closure so `prop_assume!` can skip the case by
                    // returning early.
                    let __one_case = move || $body;
                    __one_case();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body $crate::test_runner::Config::default(); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body (panics with the values
/// on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Chooses uniformly among the listed strategies (all must produce the
/// same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>>,)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5i64..=9), n in 1usize..4) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn vec_and_map(v in crate::collection::vec(0i64..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }

        #[test]
        fn flat_map_dependent_sizes(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u32..3, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1u8..=3).contains(&x));
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_form_compiles(x in any::<u64>(), b in crate::bool::ANY) {
            let _ = (x, b);
        }
    }
}
