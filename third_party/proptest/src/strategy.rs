//! The [`Strategy`] trait and the primitive/combinator strategies.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// i128/u128 ranges appear in the linalg property tests; the rand stub
// samples at u64 resolution, which covers every range the tests use.
impl Strategy for core::ops::Range<i128> {
    type Value = i128;

    fn generate(&self, rng: &mut StdRng) -> i128 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end - self.start) as u128;
        self.start + (u128::from(rng.gen_range(0..u64::MAX)) % span) as i128
    }
}

impl Strategy for core::ops::RangeInclusive<i128> {
    type Value = i128;

    fn generate(&self, rng: &mut StdRng) -> i128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let span = (hi - lo) as u128 + 1;
        lo + (u128::from(rng.gen_range(0..u64::MAX)) % span) as i128
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        rng.gen_range(0..=u64::MAX - 1)
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> u32 {
        rng.gen_range(0..=u32::MAX)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_range(0..2u32) == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// A strategy for arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The [`Strategy::prop_flat_map`] combinator.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct OneOf<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// Creates the strategy.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> OneOf<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}
