//! Hermetic stand-in for `serde_derive`: `#[derive(Serialize)]` for
//! non-generic structs with named fields — the only shape the workspace
//! derives on. The token stream is parsed by hand (no `syn`/`quote`); an
//! unsupported input shape panics at compile time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by emitting a `Value::Object` with one
/// entry per field, in declaration order.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut tokens = input.into_iter();

    // Find `struct <Name>`, skipping attributes and visibility.
    let mut name = None;
    for tt in tokens.by_ref() {
        if let TokenTree::Ident(id) = &tt {
            if id.to_string() == "struct" {
                break;
            }
            if id.to_string() == "enum" || id.to_string() == "union" {
                panic!("stand-in #[derive(Serialize)] supports only structs");
            }
        }
    }
    if let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Ident(id) => name = Some(id.to_string()),
            _ => panic!("expected struct name"),
        }
    }
    let name = name.expect("struct name");

    // Find the brace-delimited field group; generics would show up first.
    let mut fields_group = None;
    for tt in tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("stand-in #[derive(Serialize)] does not support generics")
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                fields_group = Some(g);
                break;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("stand-in #[derive(Serialize)] supports only named fields")
            }
            _ => {}
        }
    }
    let group = fields_group.expect("struct body");

    // Collect field names: skip attributes and visibility, take the ident
    // before `:`, then skip the type up to a comma at angle-bracket depth 0.
    let mut fields: Vec<String> = Vec::new();
    let mut inner = group.stream().into_iter().peekable();
    while inner.peek().is_some() {
        // Skip `#[...]` attributes (doc comments included).
        while matches!(inner.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            inner.next();
            inner.next(); // the bracket group
        }
        // Skip `pub` and an optional `(crate)` restriction.
        if matches!(inner.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            inner.next();
            if matches!(inner.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                inner.next();
            }
        }
        let Some(TokenTree::Ident(field)) = inner.next() else {
            break;
        };
        fields.push(field.to_string());
        match inner.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => panic!("expected `:` after field `{field}`"),
        }
        // Skip the type until a top-level comma.
        let mut angle_depth = 0i32;
        for tt in inner.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }

    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(vec![{entries}])\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}
