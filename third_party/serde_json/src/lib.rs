//! Hermetic stand-in for `serde_json`: renders the stand-in `serde`'s
//! [`Value`] tree as JSON text. Provides `to_string` (compact, matching
//! upstream's `{"k":"v"}` spacing) and `to_string_pretty` (2-space
//! indent).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;
use serde::{Serialize, Value};

/// Serialization error. The stand-in serializer is infallible; the type
/// exists so call sites keep upstream's `Result` signatures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Never fails; the `Result` mirrors upstream's signature.
///
/// # Examples
///
/// ```
/// #[derive(serde::Serialize)]
/// struct Point {
///     x: u32,
///     label: String,
/// }
///
/// let p = Point { x: 3, label: "a\"b".into() };
/// assert_eq!(serde_json::to_string(&p).unwrap(), r#"{"x":3,"label":"a\"b"}"#);
/// ```
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as JSON with 2-space indentation.
///
/// # Errors
///
/// Never fails; the `Result` mirrors upstream's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if x.is_finite() && x.fract() == 0.0 && x.abs() < 1e15 {
                out.push_str(&format!("{x:.1}"));
            } else {
                out.push_str(&x.to_string());
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_matches_upstream_spacing() {
        let v = Value::Object(vec![
            ("id".into(), Value::Str("E1".into())),
            (
                "rows".into(),
                Value::Array(vec![Value::Array(vec![Value::Str("1".into())])]),
            ),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"id":"E1","rows":[["1"]]}"#);
    }

    #[test]
    fn escapes_strings() {
        let v = Value::Str("a\"b\\c\nd".into());
        assert_eq!(to_string(&v).unwrap(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn pretty_indents() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::Int(1)]))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string(&Value::Object(vec![])).unwrap(), "{}");
        assert_eq!(to_string_pretty(&Value::Array(vec![])).unwrap(), "[]");
    }
}
