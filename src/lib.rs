//! `anonet` — counting in anonymous dynamic networks.
//!
//! Facade crate re-exporting the full reproduction of *"Investigating the
//! Cost of Anonymity on Dynamic Networks"* (Di Luna & Baldoni, PODC 2015):
//!
//! * [`graph`] — static/dynamic graphs, `G(PD)_h` families, flooding and
//!   the dynamic diameter (paper §3, Figure 1, Corollary 1);
//! * [`multigraph`] — `M(DBL)_k` multigraphs, the observation system
//!   `m_r = M_r s_r`, the closed-form kernel, the twin adversary and the
//!   Lemma 1 reduction (paper §4);
//! * [`netsim`] — the synchronous anonymous-broadcast simulator and
//!   hash-consed full-information views;
//! * [`core`] — counting algorithms, closed-form bounds, baselines and the
//!   cost-of-anonymity measurement harness;
//! * [`linalg`] — the exact rational/integer linear algebra underneath.
//!
//! # Quickstart
//!
//! ```
//! use anonet::core::cost::measure_counting_cost;
//! use anonet::core::bounds;
//!
//! // How long does it take an optimal leader to count 1000 anonymous
//! // nodes against the worst-case adversary? Exactly the paper's bound.
//! let c = measure_counting_cost(1000)?;
//! assert_eq!(c.measured_rounds, bounds::counting_rounds_lower_bound(1000));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable walkthroughs and `crates/bench` for the
//! binaries regenerating every figure and theorem of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use anonet_core as core;
pub use anonet_graph as graph;
pub use anonet_linalg as linalg;
pub use anonet_multigraph as multigraph;
pub use anonet_netsim as netsim;
